// Package prof wires Go's runtime profilers into the CLI binaries
// (iatd, fleetd, experiments): a -cpuprofile/-memprofile pair for
// offline pprof analysis of a single run, and an optional -pprof live
// endpoint for poking at a long run in flight.
//
// Profiling observes host wall-time and is — like the harness's
// wall-clock accounting — explicitly outside the determinism guarantee:
// nothing here feeds simulated state, and a run's recorded output is
// byte-identical with and without profiling enabled.
package prof

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Opts holds the three profiling flag values shared by every binary.
// The zero value disables everything.
type Opts struct {
	CPUProfile string // write a CPU profile to this file
	MemProfile string // write a heap profile to this file at stop
	PprofAddr  string // serve live pprof endpoints on this address
}

// RegisterFlags installs the profiling flags on fs (pass
// flag.CommandLine for binaries using the global flag set).
func (o *Opts) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&o.PprofAddr, "pprof", "", "serve live net/http/pprof endpoints on this address (e.g. localhost:6060)")
}

// Profiler is one started profiling session. The zero value (nothing
// requested) is valid and Stop on it is a no-op.
type Profiler struct {
	cpu *os.File
	mem *os.File
	srv *http.Server
	ln  net.Listener

	// Addr is the listener's resolved address when -pprof is active
	// (useful when the flag asked for port 0), empty otherwise.
	Addr string
}

// Start begins everything o requests. Every output path and the listen
// address are validated here — including the -memprofile file, which is
// created eagerly even though it is only written at Stop — so a bad
// flag value fails fast (the callers map the error to exit 2) instead
// of after a long run. On error nothing stays running.
func (o *Opts) Start() (*Profiler, error) {
	p := &Profiler{}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			p.shutdown()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpu = f
		if err := pprof.StartCPUProfile(f); err != nil {
			p.shutdown()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			p.shutdown()
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
		p.mem = f
	}
	if o.PprofAddr != "" {
		ln, err := net.Listen("tcp", o.PprofAddr)
		if err != nil {
			p.shutdown()
			return nil, fmt.Errorf("-pprof: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		p.ln, p.srv, p.Addr = ln, &http.Server{Handler: mux}, ln.Addr().String()
		go p.srv.Serve(ln) //simlint:ignore detlint the pprof debug endpoint serves host-side observers; nothing it touches feeds simulated state
	}
	return p, nil
}

// Stop finishes the session: the CPU profile is flushed and closed, the
// heap profile is captured (after a GC, so the profile reflects live
// objects rather than garbage) and written, and the live endpoint shut
// down. The first error wins but every teardown step still runs.
func (p *Profiler) Stop() error {
	var first error
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil && first == nil {
			first = fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpu = nil
	}
	if p.mem != nil {
		runtime.GC()
		if err := pprof.WriteHeapProfile(p.mem); err != nil && first == nil {
			first = fmt.Errorf("-memprofile: %w", err)
		}
		if err := p.mem.Close(); err != nil && first == nil {
			first = fmt.Errorf("-memprofile: %w", err)
		}
		p.mem = nil
	}
	p.shutdown()
	return first
}

// shutdown tears down whatever is running without touching profile
// contents (the error-path half of Start, reused by Stop for the
// listener).
func (p *Profiler) shutdown() {
	if p.cpu != nil {
		pprof.StopCPUProfile()
		p.cpu.Close()
		p.cpu = nil
	}
	if p.mem != nil {
		p.mem.Close()
		p.mem = nil
	}
	if p.srv != nil {
		p.srv.Close()
		p.srv, p.ln, p.Addr = nil, nil, ""
	}
}
