package prof

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestZeroValueIsNoOp: with no flags set, Start hands back a session
// whose Stop does nothing — the default path every unprofiled run takes.
func TestZeroValueIsNoOp(t *testing.T) {
	var o Opts
	p, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != "" {
		t.Fatalf("no -pprof flag but Addr = %q", p.Addr)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestProfilesWritten: a started-and-stopped session leaves non-empty
// pprof files at both flag paths.
func TestProfilesWritten(t *testing.T) {
	dir := t.TempDir()
	o := Opts{
		CPUProfile: filepath.Join(dir, "cpu.pb.gz"),
		MemProfile: filepath.Join(dir, "mem.pb.gz"),
	}
	p, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have something to say.
	var sink []byte
	s := 0
	for i := 0; i < 1<<20; i++ {
		s += i
		if i%(1<<18) == 0 {
			sink = append(sink, make([]byte, 1<<16)...)
		}
	}
	_ = sink
	if s == 0 {
		t.Fatal("unreachable")
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{o.CPUProfile, o.MemProfile} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

// TestBadPathsFailFast: every invalid flag value must surface at Start —
// the -memprofile path included, even though its file is only written at
// Stop — so the CLIs can exit 2 before simulating anything.
func TestBadPathsFailFast(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no", "such", "dir", "out.pb.gz")
	cases := []Opts{
		{CPUProfile: missing},
		{MemProfile: missing},
		{PprofAddr: "999.999.999.999:0"},
	}
	for i, o := range cases {
		p, err := o.Start()
		if err == nil {
			p.Stop()
			t.Fatalf("case %d (%+v): Start succeeded", i, o)
		}
	}
}

// TestLiveEndpoint: -pprof on an ephemeral port serves the pprof index
// and goes away at Stop.
func TestLiveEndpoint(t *testing.T) {
	o := Opts{PprofAddr: "127.0.0.1:0"}
	p, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr == "" {
		t.Fatal("no resolved listen address")
	}
	url := fmt.Sprintf("http://%s/debug/pprof/", p.Addr)
	resp, err := http.Get(url)
	if err != nil {
		p.Stop()
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		p.Stop()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "profile") {
		p.Stop()
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("endpoint still serving after Stop")
	}
}

// TestRegisterFlags: the flag names and defaults are the contract the
// three binaries share.
func TestRegisterFlags(t *testing.T) {
	var o Opts
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	o.RegisterFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-pprof", "addr"}); err != nil {
		t.Fatal(err)
	}
	if o.CPUProfile != "a" || o.MemProfile != "b" || o.PprofAddr != "addr" {
		t.Fatalf("parsed opts = %+v", o)
	}
}
