// Package rdt is the pqos-like library of the reproduction: a thin,
// validated API over the MSR register file for Intel Resource Director
// Technology — Cache Allocation Technology (CAT), Cache Monitoring
// Technology (CMT)-style per-core counters, and the DDIO way-mask extension
// the paper's authors added to pqos (the "enhanced RDT library (pqos) with
// DDIO functionalities" released with the paper).
//
// Everything IAT knows about the machine flows through this package, which
// is why the daemon in internal/core would drive real silicon unchanged if
// this package were re-implemented with rdmsr/wrmsr.
package rdt

import (
	"fmt"

	"iatsim/internal/cache"
	"iatsim/internal/msr"
)

// CounterBits is the implemented width of the hardware event counters:
// cumulative values count modulo 2^CounterBits, as the 48-bit general
// counters on Skylake-SP do. Deltas between samples must therefore be
// taken modularly — a counter that wrapped between two polls would
// otherwise produce a huge bogus delta instead of the true small one.
const CounterBits = 48

// counterDelta is the wraparound-aware difference cur - prev modulo
// 2^CounterBits. For unwrapped counters it is plain subtraction.
func counterDelta(cur, prev uint64) uint64 {
	return (cur - prev) & ((uint64(1) << CounterBits) - 1)
}

// CoreCounters is one sample of the per-core hardware events the daemon
// polls (Sec. IV-B: IPC from instructions and cycles, plus LLC references
// and misses).
type CoreCounters struct {
	Instructions uint64
	Cycles       uint64
	LLCRefs      uint64
	LLCMisses    uint64
}

// Add accumulates o into c (used to aggregate multi-core tenants).
func (c *CoreCounters) Add(o CoreCounters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.LLCRefs += o.LLCRefs
	c.LLCMisses += o.LLCMisses
}

// Sub returns the delta c - o, modulo 2^CounterBits per event (see
// CounterBits: wrapped cumulative counters yield their true delta, not a
// huge two's-complement residue).
func (c CoreCounters) Sub(o CoreCounters) CoreCounters {
	return CoreCounters{
		Instructions: counterDelta(c.Instructions, o.Instructions),
		Cycles:       counterDelta(c.Cycles, o.Cycles),
		LLCRefs:      counterDelta(c.LLCRefs, o.LLCRefs),
		LLCMisses:    counterDelta(c.LLCMisses, o.LLCMisses),
	}
}

// IPC returns instructions per cycle for the sample, or 0 when no cycles
// elapsed.
func (c CoreCounters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// MissRate returns LLC misses per reference in [0,1], or 0 when there were
// no references.
func (c CoreCounters) MissRate() float64 {
	if c.LLCRefs == 0 {
		return 0
	}
	return float64(c.LLCMisses) / float64(c.LLCRefs)
}

// DDIOCounters is one sample of the chip-wide DDIO events, obtained by
// sampling one CHA and scaling by the slice count (Sec. V).
type DDIOCounters struct {
	Hits   uint64 // write updates
	Misses uint64 // write allocates
}

// Sub returns the delta d - o, modulo 2^CounterBits per event.
func (d DDIOCounters) Sub(o DDIOCounters) DDIOCounters {
	return DDIOCounters{
		Hits:   counterDelta(d.Hits, o.Hits),
		Misses: counterDelta(d.Misses, o.Misses),
	}
}

// Config sizes the controller.
type Config struct {
	Cores    int // logical cores under management
	Ways     int // LLC associativity (CBM width)
	NumCLOS  int // classes of service supported (16 on SKX)
	Slices   int // LLC slice count, for DDIO counter extrapolation
	MinWays  int // minimum CBM population (1 on real hardware)
	SampleSl int // which slice to sample for DDIO counters (default 0)
}

// Controller is the library handle.
type Controller struct {
	cfg Config
	f   *msr.File

	// Datapath memoization. The cache model resolves MaskForCore on every
	// fill and the MBA model resolves MBAThrottleForCore after every missing
	// microtick — each a two-register indirection through the register
	// file's mutex. Both resolutions are pure functions of register
	// contents, so they are cached per core and invalidated wholesale when
	// the file's generation moves (any wrmsr). Peek-based and therefore
	// invisible to the Ops accounting and the fault hook, exactly like the
	// hardware datapath the pre-memoized MBAThrottleForCore modelled.
	memoGen  uint64
	maskOK   []bool
	maskMemo []cache.WayMask
	mbaOK    []bool
	mbaMemo  []int
}

// New builds a controller over the register file. It programs every CLOS to
// the full mask and associates every core with CLOS 0, matching the
// hardware's reset state.
func New(cfg Config, f *msr.File) (*Controller, error) {
	if cfg.Cores <= 0 || cfg.Ways <= 0 || cfg.Ways > 32 {
		return nil, fmt.Errorf("rdt: bad config %+v", cfg)
	}
	if cfg.NumCLOS == 0 {
		cfg.NumCLOS = 16
	}
	if cfg.MinWays == 0 {
		cfg.MinWays = 1
	}
	c := &Controller{
		cfg:      cfg,
		f:        f,
		maskOK:   make([]bool, cfg.Cores),
		maskMemo: make([]cache.WayMask, cfg.Cores),
		mbaOK:    make([]bool, cfg.Cores),
		mbaMemo:  make([]int, cfg.Cores),
	}
	full := cache.FullMask(cfg.Ways)
	for clos := 0; clos < cfg.NumCLOS; clos++ {
		if err := f.Write(msr.L3MaskAddr(clos), uint64(full)); err != nil {
			return nil, err
		}
	}
	for core := 0; core < cfg.Cores; core++ {
		if err := f.Write(msr.PQRAssocAddr(core), 0); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// NumWays returns the CBM width (LLC associativity).
func (c *Controller) NumWays() int { return c.cfg.Ways }

// SetCLOSMask programs the CAT capacity bitmask of a class of service. Real
// CAT rejects empty and non-contiguous masks; so do we.
func (c *Controller) SetCLOSMask(clos int, m cache.WayMask) error {
	if clos < 0 || clos >= c.cfg.NumCLOS {
		return fmt.Errorf("rdt: clos %d out of range [0,%d)", clos, c.cfg.NumCLOS)
	}
	if m.Count() < c.cfg.MinWays {
		return fmt.Errorf("rdt: mask %v populates fewer than %d ways", m, c.cfg.MinWays)
	}
	if !m.Contiguous() {
		return fmt.Errorf("rdt: mask %v is not contiguous", m)
	}
	if m.Highest() >= c.cfg.Ways {
		return fmt.Errorf("rdt: mask %v exceeds %d ways", m, c.cfg.Ways)
	}
	return c.f.Write(msr.L3MaskAddr(clos), uint64(m))
}

// CLOSMask reads back the CAT mask of a class of service.
func (c *Controller) CLOSMask(clos int) cache.WayMask {
	return cache.WayMask(c.f.Read(msr.L3MaskAddr(clos)))
}

// Assoc associates a core with a class of service (IA32_PQR_ASSOC).
func (c *Controller) Assoc(core, clos int) error {
	if core < 0 || core >= c.cfg.Cores {
		return fmt.Errorf("rdt: core %d out of range [0,%d)", core, c.cfg.Cores)
	}
	if clos < 0 || clos >= c.cfg.NumCLOS {
		return fmt.Errorf("rdt: clos %d out of range [0,%d)", clos, c.cfg.NumCLOS)
	}
	return c.f.Write(msr.PQRAssocAddr(core), uint64(clos))
}

// CoreCLOS returns the class of service a core is associated with.
func (c *Controller) CoreCLOS(core int) int {
	return int(c.f.Read(msr.PQRAssocAddr(core)))
}

// refreshMemo drops every memoized datapath resolution when the register
// file has mutated since the memo was built.
func (c *Controller) refreshMemo() {
	g := c.f.Generation()
	if g == c.memoGen {
		return
	}
	c.memoGen = g
	for i := range c.maskOK {
		c.maskOK[i] = false
		c.mbaOK[i] = false
	}
}

// MaskForCore resolves the effective allocation mask of a core (its CLOS's
// CBM). The cache model consults this on every fill, so the resolution is
// memoized per core against the register file's generation; like the
// hardware datapath it does not charge management-plane MSR operations.
func (c *Controller) MaskForCore(core int) cache.WayMask {
	c.refreshMemo()
	if c.maskOK[core] {
		return c.maskMemo[core]
	}
	clos := int(c.f.Peek(msr.PQRAssocAddr(core)))
	m := cache.WayMask(c.f.Peek(msr.L3MaskAddr(clos)))
	c.maskMemo[core] = m
	c.maskOK[core] = true
	return m
}

// SetDDIOMask programs the IIO_LLC_WAYS register. The same contiguity rule
// applies (the register is a way bitmap like a CBM).
func (c *Controller) SetDDIOMask(m cache.WayMask) error {
	if m.Count() < 1 {
		return fmt.Errorf("rdt: DDIO mask must populate at least one way")
	}
	if !m.Contiguous() {
		return fmt.Errorf("rdt: DDIO mask %v is not contiguous", m)
	}
	if m.Highest() >= c.cfg.Ways {
		return fmt.Errorf("rdt: DDIO mask %v exceeds %d ways", m, c.cfg.Ways)
	}
	return c.f.Write(msr.IIOLLCWays, uint64(m))
}

// DDIOMask reads back the current DDIO way mask.
func (c *Controller) DDIOMask() cache.WayMask {
	return cache.WayMask(c.f.Read(msr.IIOLLCWays))
}

// SetMBAThrottle programs a CLOS's Memory Bandwidth Allocation delay value:
// the percentage (0-90, in steps of 10, as real MBA exposes) by which the
// class's memory request rate is throttled. 0 disables throttling.
func (c *Controller) SetMBAThrottle(clos, percent int) error {
	if clos < 0 || clos >= c.cfg.NumCLOS {
		return fmt.Errorf("rdt: clos %d out of range [0,%d)", clos, c.cfg.NumCLOS)
	}
	if percent < 0 || percent > 90 || percent%10 != 0 {
		return fmt.Errorf("rdt: MBA throttle %d%% invalid (0-90 in steps of 10)", percent)
	}
	return c.f.Write(msr.MBAThrtlAddr(clos), uint64(percent))
}

// MBAThrottle reads back a CLOS's MBA throttle percentage.
func (c *Controller) MBAThrottle(clos int) int {
	return int(c.f.Read(msr.MBAThrtlAddr(clos)))
}

// MBAThrottleForCore resolves the effective throttle of a core's CLOS
// without charging management-plane MSR operations (the hardware datapath
// consults it on every memory request). Memoized like MaskForCore.
func (c *Controller) MBAThrottleForCore(core int) int {
	c.refreshMemo()
	if c.mbaOK[core] {
		return c.mbaMemo[core]
	}
	clos := int(c.f.Peek(msr.PQRAssocAddr(core)))
	t := int(c.f.Peek(msr.MBAThrtlAddr(clos)))
	c.mbaMemo[core] = t
	c.mbaOK[core] = true
	return t
}

// ReadCore reads the four per-core event counters of one core (4 rdmsr
// operations, as the real daemon pays).
func (c *Controller) ReadCore(core int) CoreCounters {
	return CoreCounters{
		Instructions: c.f.Read(msr.CoreCounterAddr(core, msr.EvInstructions)),
		Cycles:       c.f.Read(msr.CoreCounterAddr(core, msr.EvCycles)),
		LLCRefs:      c.f.Read(msr.CoreCounterAddr(core, msr.EvLLCRefs)),
		LLCMisses:    c.f.Read(msr.CoreCounterAddr(core, msr.EvLLCMisses)),
	}
}

// ReadDDIO samples the DDIO hit/miss counters of one CHA and extrapolates
// to the whole chip by multiplying by the slice count, exactly as Sec. V
// describes ("by only accessing one LLC slice's performance counters, we
// can infer the full picture ... by multiplying it by the number of
// slices").
func (c *Controller) ReadDDIO() DDIOCounters {
	s := c.cfg.SampleSl
	n := uint64(c.cfg.Slices)
	if n == 0 {
		n = 1
	}
	return DDIOCounters{
		Hits:   c.f.Read(msr.CHACounterAddr(s, msr.EvDDIOHit)) * n,
		Misses: c.f.Read(msr.CHACounterAddr(s, msr.EvDDIOMiss)) * n,
	}
}
