package rdt

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/msr"
)

func newTestController(t *testing.T) (*Controller, *msr.File) {
	t.Helper()
	f := msr.NewFile()
	c, err := New(Config{Cores: 4, Ways: 11, NumCLOS: 8, Slices: 18}, f)
	if err != nil {
		t.Fatal(err)
	}
	return c, f
}

func TestResetState(t *testing.T) {
	c, _ := newTestController(t)
	for clos := 0; clos < 8; clos++ {
		if m := c.CLOSMask(clos); m != cache.FullMask(11) {
			t.Fatalf("clos %d reset mask = %v", clos, m)
		}
	}
	for core := 0; core < 4; core++ {
		if c.CoreCLOS(core) != 0 {
			t.Fatalf("core %d not in CLOS 0 at reset", core)
		}
	}
}

func TestSetCLOSMaskValidation(t *testing.T) {
	c, _ := newTestController(t)
	if err := c.SetCLOSMask(1, cache.ContiguousMask(2, 3)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		clos int
		m    cache.WayMask
	}{
		{1, 0},                          // empty
		{1, cache.WayMask(0b101)},       // non-contiguous
		{1, cache.ContiguousMask(9, 3)}, // exceeds 11 ways
		{-1, cache.FullMask(2)},         // clos out of range
		{8, cache.FullMask(2)},          // clos out of range
	}
	for i, tc := range cases {
		if err := c.SetCLOSMask(tc.clos, tc.m); err == nil {
			t.Errorf("case %d: invalid mask accepted", i)
		}
	}
}

func TestAssocAndEffectiveMask(t *testing.T) {
	c, _ := newTestController(t)
	if err := c.SetCLOSMask(2, cache.ContiguousMask(4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Assoc(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.MaskForCore(1); got != cache.ContiguousMask(4, 2) {
		t.Fatalf("effective mask = %v", got)
	}
	if err := c.Assoc(9, 1); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := c.Assoc(0, 99); err == nil {
		t.Error("out-of-range clos accepted")
	}
}

func TestDDIOMaskValidation(t *testing.T) {
	c, _ := newTestController(t)
	if err := c.SetDDIOMask(cache.ContiguousMask(8, 3)); err != nil {
		t.Fatal(err)
	}
	if got := c.DDIOMask(); got != cache.ContiguousMask(8, 3) {
		t.Fatalf("ddio mask = %v", got)
	}
	if err := c.SetDDIOMask(0); err == nil {
		t.Error("empty DDIO mask accepted")
	}
	if err := c.SetDDIOMask(cache.WayMask(0b1001)); err == nil {
		t.Error("non-contiguous DDIO mask accepted")
	}
}

func TestReadCoreCounters(t *testing.T) {
	c, f := newTestController(t)
	f.MapRead(msr.CoreCounterAddr(2, msr.EvInstructions), func() uint64 { return 1000 })
	f.MapRead(msr.CoreCounterAddr(2, msr.EvCycles), func() uint64 { return 2000 })
	f.MapRead(msr.CoreCounterAddr(2, msr.EvLLCRefs), func() uint64 { return 50 })
	f.MapRead(msr.CoreCounterAddr(2, msr.EvLLCMisses), func() uint64 { return 10 })
	cc := c.ReadCore(2)
	if cc.Instructions != 1000 || cc.Cycles != 2000 || cc.LLCRefs != 50 || cc.LLCMisses != 10 {
		t.Fatalf("counters = %+v", cc)
	}
	if ipc := cc.IPC(); ipc != 0.5 {
		t.Fatalf("IPC = %v", ipc)
	}
	if mr := cc.MissRate(); mr != 0.2 {
		t.Fatalf("miss rate = %v", mr)
	}
}

func TestReadDDIOSamplesOneSliceTimesSlices(t *testing.T) {
	c, f := newTestController(t)
	f.MapRead(msr.CHACounterAddr(0, msr.EvDDIOHit), func() uint64 { return 100 })
	f.MapRead(msr.CHACounterAddr(0, msr.EvDDIOMiss), func() uint64 { return 7 })
	d := c.ReadDDIO()
	if d.Hits != 100*18 || d.Misses != 7*18 {
		t.Fatalf("ddio counters = %+v (want x18 extrapolation)", d)
	}
}

func TestCounterArithmetic(t *testing.T) {
	a := CoreCounters{Instructions: 100, Cycles: 200, LLCRefs: 30, LLCMisses: 12}
	b := CoreCounters{Instructions: 40, Cycles: 100, LLCRefs: 10, LLCMisses: 2}
	d := a.Sub(b)
	if d.Instructions != 60 || d.Cycles != 100 || d.LLCRefs != 20 || d.LLCMisses != 10 {
		t.Fatalf("delta = %+v", d)
	}
	var agg CoreCounters
	agg.Add(a)
	agg.Add(b)
	if agg.Instructions != 140 {
		t.Fatalf("agg = %+v", agg)
	}
	var zero CoreCounters
	if zero.IPC() != 0 || zero.MissRate() != 0 {
		t.Fatal("zero counters should yield zero rates")
	}
	dd := DDIOCounters{Hits: 10, Misses: 5}.Sub(DDIOCounters{Hits: 4, Misses: 1})
	if dd.Hits != 6 || dd.Misses != 4 {
		t.Fatalf("ddio delta = %+v", dd)
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := New(Config{Cores: 0, Ways: 11}, msr.NewFile()); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := New(Config{Cores: 4, Ways: 40}, msr.NewFile()); err == nil {
		t.Error("40 ways accepted")
	}
}

func TestMBAThrottleValidation(t *testing.T) {
	c, _ := newTestController(t)
	if err := c.SetMBAThrottle(1, 50); err != nil {
		t.Fatal(err)
	}
	if c.MBAThrottle(1) != 50 {
		t.Fatalf("read back %d", c.MBAThrottle(1))
	}
	for _, bad := range []int{-10, 95, 55, 100} {
		if err := c.SetMBAThrottle(1, bad); err == nil {
			t.Errorf("throttle %d accepted", bad)
		}
	}
	if err := c.SetMBAThrottle(99, 10); err == nil {
		t.Error("out-of-range clos accepted")
	}
}

func TestMBAThrottleForCore(t *testing.T) {
	c, _ := newTestController(t)
	if err := c.SetMBAThrottle(2, 30); err != nil {
		t.Fatal(err)
	}
	if err := c.Assoc(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.MBAThrottleForCore(1); got != 30 {
		t.Fatalf("effective throttle = %d", got)
	}
	if got := c.MBAThrottleForCore(0); got != 0 {
		t.Fatalf("unthrottled core reports %d", got)
	}
}
