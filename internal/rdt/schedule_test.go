// External test package: internal/faults imports rdt (for CounterBits),
// so the fault-schedule test cannot live in package rdt itself.
package rdt_test

import (
	"testing"

	"iatsim/internal/faults"
	"iatsim/internal/msr"
	"iatsim/internal/rdt"
)

// TestMemoizedPathsAreFaultScheduleInvariant proves the datapath
// memoization is invisible to the chaos harness: with counter-fault
// injection armed, the corrupted counter stream the daemon observes is
// identical whether or not masks and throttles are resolved (memoized,
// Peek-based) between the polls. A memoized path that consumed injector
// PRNG state or tripped the per-address fault bookkeeping would shift
// every subsequent corruption.
func TestMemoizedPathsAreFaultScheduleInvariant(t *testing.T) {
	sample := func(interleave bool) []rdt.CoreCounters {
		f := msr.NewFile()
		c, err := rdt.New(rdt.Config{Cores: 4, Ways: 11, NumCLOS: 8, Slices: 18}, f)
		if err != nil {
			t.Fatal(err)
		}
		var ticks uint64
		for core := 0; core < 4; core++ {
			core := core
			for ev := 0; ev < 4; ev++ {
				ev := ev
				f.MapRead(msr.CoreCounterAddr(core, ev), func() uint64 {
					return ticks * uint64(1+core+ev)
				})
			}
		}
		var prof faults.Profile
		prof.Rates[faults.CounterWrap] = 0.2
		prof.Rates[faults.CounterZero] = 0.1
		prof.Rates[faults.CounterStale] = 0.1
		f.SetFaultHook(faults.NewInjector(prof, 7))
		var out []rdt.CoreCounters
		for i := 0; i < 200; i++ {
			ticks += 1000
			if interleave {
				for core := 0; core < 4; core++ {
					c.MaskForCore(core)
					c.MBAThrottleForCore(core)
				}
			}
			for core := 0; core < 4; core++ {
				out = append(out, c.ReadCore(core))
			}
		}
		return out
	}
	plain, interleaved := sample(false), sample(true)
	for i := range plain {
		if plain[i] != interleaved[i] {
			t.Fatalf("sample %d diverged: %+v (plain) vs %+v (interleaved)", i, plain[i], interleaved[i])
		}
	}
}
