package rdt

import (
	"testing"

	"iatsim/internal/cache"
)

// TestCounterDeltaWrap pins the 48-bit modular delta at the wrap boundary:
// a counter that rolled through 2^48-1 between two polls must yield its
// true small delta, not a huge two's-complement residue.
func TestCounterDeltaWrap(t *testing.T) {
	const max = (uint64(1) << CounterBits) - 1
	cases := []struct {
		prev, cur, want uint64
	}{
		{0, 0, 0},
		{100, 100, 0},
		{100, 250, 150},
		{max, 0, 1},     // exact wrap through the top
		{max - 4, 3, 8}, // wrap with activity on both sides
		{max, max, 0},   // parked at the boundary
		{0, max, max},   // full-range forward delta
		{5, 2, max - 2}, // backwards glitch shows as a near-full delta
		{1 << 47, 1<<47 + 7, 7},
	}
	for i, tc := range cases {
		if got := counterDelta(tc.cur, tc.prev); got != tc.want {
			t.Errorf("case %d: counterDelta(%#x, %#x) = %#x, want %#x", i, tc.cur, tc.prev, got, tc.want)
		}
	}
}

// TestCountersSubWrap drives every CoreCounters and DDIOCounters field
// through the 2^48-1 boundary at once.
func TestCountersSubWrap(t *testing.T) {
	const max = (uint64(1) << CounterBits) - 1
	prev := CoreCounters{Instructions: max - 1, Cycles: max, LLCRefs: max - 9, LLCMisses: 3}
	cur := CoreCounters{Instructions: 8, Cycles: 0, LLCRefs: 0, LLCMisses: 5}
	d := cur.Sub(prev)
	if d.Instructions != 10 || d.Cycles != 1 || d.LLCRefs != 10 || d.LLCMisses != 2 {
		t.Fatalf("wrapped core delta = %+v", d)
	}
	dd := DDIOCounters{Hits: 2, Misses: 0}.Sub(DDIOCounters{Hits: max, Misses: max - 4})
	if dd.Hits != 3 || dd.Misses != 5 {
		t.Fatalf("wrapped ddio delta = %+v", dd)
	}
}

// TestMaskMemoInvalidation: the memoized MaskForCore/MBAThrottleForCore
// must track every register mutation that can change them — CLOS mask
// reprogramming, core re-association, throttle changes — with no stale
// reads in between.
func TestMaskMemoInvalidation(t *testing.T) {
	c, _ := newTestController(t)
	if got := c.MaskForCore(1); got != cache.FullMask(11) {
		t.Fatalf("reset mask = %v", got)
	}
	// Prime the memo for every core, then mutate one CLOS.
	for core := 0; core < 4; core++ {
		c.MaskForCore(core)
		c.MBAThrottleForCore(core)
	}
	if err := c.SetCLOSMask(0, cache.ContiguousMask(0, 3)); err != nil {
		t.Fatal(err)
	}
	for core := 0; core < 4; core++ {
		if got := c.MaskForCore(core); got != cache.ContiguousMask(0, 3) {
			t.Fatalf("core %d mask = %v after CLOS 0 reprogram", core, got)
		}
	}
	// Re-associate one core to a differently programmed CLOS.
	if err := c.SetCLOSMask(3, cache.ContiguousMask(5, 4)); err != nil {
		t.Fatal(err)
	}
	if err := c.Assoc(2, 3); err != nil {
		t.Fatal(err)
	}
	if got := c.MaskForCore(2); got != cache.ContiguousMask(5, 4) {
		t.Fatalf("re-associated core mask = %v", got)
	}
	if got := c.MaskForCore(1); got != cache.ContiguousMask(0, 3) {
		t.Fatalf("unassociated core disturbed: %v", got)
	}
	// MBA memo follows throttle writes and association changes too.
	if err := c.SetMBAThrottle(3, 40); err != nil {
		t.Fatal(err)
	}
	if got := c.MBAThrottleForCore(2); got != 40 {
		t.Fatalf("throttle after reprogram = %d", got)
	}
	if err := c.Assoc(2, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.MBAThrottleForCore(2); got != 0 {
		t.Fatalf("throttle after re-association = %d", got)
	}
	// Repeated reads without intervening writes stay stable (served from
	// the memo) and agree with the counted management-plane read path.
	for i := 0; i < 3; i++ {
		if got, want := c.MaskForCore(2), c.CLOSMask(c.CoreCLOS(2)); got != want {
			t.Fatalf("memoized mask %v != read-path mask %v", got, want)
		}
	}
}
