package rdt

import "testing"

// Regression: cumulative counters count modulo 2^CounterBits, so a sample
// delta across a wrap must come out as the true small difference, not a
// huge two's-complement residue.
func TestCounterDeltaWraparound(t *testing.T) {
	max := (uint64(1) << CounterBits) - 1
	if d := counterDelta(400, max-99); d != 500 {
		t.Fatalf("wrapped delta = %d, want 500", d)
	}
	if d := counterDelta(7000, 2000); d != 5000 {
		t.Fatalf("plain delta = %d, want 5000", d)
	}
	if d := counterDelta(12345, 12345); d != 0 {
		t.Fatalf("zero delta = %d", d)
	}
}

func TestCoreCountersSubAcrossWrap(t *testing.T) {
	max := (uint64(1) << CounterBits) - 1
	prev := CoreCounters{
		Instructions: max - 10,
		Cycles:       max,
		LLCRefs:      max,
		LLCMisses:    100, // not wrapped
	}
	cur := CoreCounters{
		Instructions: 489, // wrapped: true delta 500
		Cycles:       999, // wrapped: true delta 1000
		LLCRefs:      49,  // wrapped: true delta 50
		LLCMisses:    120,
	}
	d := cur.Sub(prev)
	want := CoreCounters{Instructions: 500, Cycles: 1000, LLCRefs: 50, LLCMisses: 20}
	if d != want {
		t.Fatalf("Sub across wrap = %+v, want %+v", d, want)
	}
	// Sanity of the derived rates: a wrapped sample must still yield a
	// plausible IPC, not ~2^48 instructions.
	if ipc := d.IPC(); ipc != 0.5 {
		t.Fatalf("IPC across wrap = %v, want 0.5", ipc)
	}
}

func TestDDIOCountersSubAcrossWrap(t *testing.T) {
	max := (uint64(1) << CounterBits) - 1
	prev := DDIOCounters{Hits: max - 4, Misses: 10}
	cur := DDIOCounters{Hits: 15, Misses: 11}
	d := cur.Sub(prev)
	if d.Hits != 20 || d.Misses != 1 {
		t.Fatalf("DDIO Sub across wrap = %+v", d)
	}
}
