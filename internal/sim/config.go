// Package sim is the platform simulation engine: it assembles the memory
// controller, the cache hierarchy, the MSR register file, the RDT
// controller, the DDIO engine, NIC devices and tenants into one machine and
// advances simulated time in epochs subdivided into microticks, during which
// traffic generators, DMA engines and core workloads run interleaved.
//
// The engine exposes exactly the observables the paper's daemon polls —
// per-core instructions, cycles, LLC references and misses, and per-CHA
// DDIO hit/miss counters — through the MSR file, so the IAT implementation
// in internal/core is oblivious to the fact that it is driving a simulation.
package sim

import (
	"iatsim/internal/cache"
	"iatsim/internal/mem"
)

// Config describes a platform.
type Config struct {
	// Cores is the number of physical cores (Hyper-Threading disabled,
	// as in the paper's testbed).
	Cores int
	// FreqGHz is the core clock (2.3 for the Xeon Gold 6140).
	FreqGHz float64
	// Scale divides both the offered packet rate and the per-core cycle
	// budget, preserving producer/consumer balance and cache footprints
	// while shrinking simulation cost. Reported throughputs are
	// multiplied back. 1 disables scaling.
	Scale float64
	// EpochNS is the engine step; controllers are polled once per epoch.
	EpochNS float64
	// Microticks subdivides an epoch for NIC/core interleaving.
	Microticks int
	// Hier is the cache hierarchy shape.
	Hier cache.HierarchyConfig
	// Mem is the memory subsystem model.
	Mem mem.Config
	// NumCLOS is how many classes of service CAT exposes.
	NumCLOS int
	// BaseCPI is the cycles-per-instruction of non-memory work (0.5
	// models a 2-wide retire, a reasonable figure for Skylake-SP
	// integer code).
	BaseCPI float64
	// AmbientFillPS is the background LLC allocation rate (lines per
	// unscaled second) modelling kernel/agent/prefetcher churn from the
	// parts of the host the workloads don't capture. It is divided by
	// Scale like every other rate. 0 selects the default (20M lines/s,
	// ~1.3GB/s of fill traffic across the socket); negative disables it.
	AmbientFillPS float64
}

// XeonGold6140 returns the paper's testbed configuration (Table I): 18
// cores at 2.3GHz, 8-way 32KB L1D, 16-way 1MB L2, 11-way 24.75MB LLC in 18
// slices, six DDR4-2666 channels.
func XeonGold6140(scale float64) Config {
	const cores = 18
	return Config{
		Cores:      cores,
		FreqGHz:    2.3,
		Scale:      scale,
		EpochNS:    1e6, // 1ms
		Microticks: 20,
		Hier:       cache.XeonGold6140Hierarchy(cores),
		Mem:        mem.DefaultConfig(),
		NumCLOS:    16,
		BaseCPI:    0.5,
	}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.EpochNS == 0 {
		c.EpochNS = 1e6
	}
	if c.Microticks == 0 {
		c.Microticks = 20
	}
	if c.NumCLOS == 0 {
		c.NumCLOS = 16
	}
	if c.BaseCPI == 0 {
		c.BaseCPI = 0.5
	}
	if c.AmbientFillPS == 0 {
		c.AmbientFillPS = 20e6
	}
	return c
}

// CycleBudget returns the per-core cycle budget of one microtick.
func (c Config) CycleBudget() int64 {
	dt := c.EpochNS / float64(c.Microticks)
	return int64(c.FreqGHz * dt / c.Scale)
}
