package sim

import "iatsim/internal/cache"

// Ctx is the execution context handed to a Worker for one microtick on one
// core. It charges every memory access and every instruction against the
// core's cycle budget and accumulates the per-core counters (instructions,
// cycles) that back the emulated performance-counter MSRs.
type Ctx struct {
	p      *Platform
	core   int
	mask   cache.WayMask
	budget int64
	spent  int64
	nowNS  float64
}

// Core returns the core this context executes on.
func (c *Ctx) Core() int { return c.core }

// NowNS returns the simulated time at the start of the microtick.
func (c *Ctx) NowNS() float64 { return c.nowNS }

// Remaining returns the unconsumed cycle budget. It can go slightly
// negative when the last operation overshoots; the engine carries the debt
// into the next microtick.
func (c *Ctx) Remaining() int64 { return c.budget - c.spent }

// Access performs a demand load or store of the line holding address a,
// charging its latency and retiring one instruction. It returns the latency
// in core cycles (workloads use it to build latency histograms).
func (c *Ctx) Access(a uint64, write bool) int64 {
	lat := c.p.Hier.Access(c.core, a, write, c.mask)
	c.spent += lat
	c.p.instr[c.core]++
	return lat
}

// StreamMLP is the memory-level parallelism of streaming (sequential)
// accesses: hardware prefetchers and out-of-order execution overlap
// consecutive line transfers, so a bulk copy pays roughly 1/StreamMLP of
// the serialised latency. Dependent accesses (pointer chases) use Access
// directly and pay full latency.
const StreamMLP = 4

// AccessRange touches every line of [a, a+n) sequentially — a streaming
// read (write=false) or write (write=true), e.g. a packet copy or a value
// read. Cache state is updated per line, but the charged latency is divided
// by StreamMLP to model prefetch/out-of-order overlap. Returns the charged
// cycles.
func (c *Ctx) AccessRange(a uint64, n int, write bool) int64 {
	if n <= 0 {
		return 0
	}
	var tot int64
	first := a &^ (cache.LineSize - 1)
	last := (a + uint64(n) - 1) &^ (cache.LineSize - 1)
	for line := first; line <= last; line += cache.LineSize {
		lat := c.p.Hier.Access(c.core, line, write, c.mask)
		c.p.instr[c.core]++
		tot += lat
	}
	charged := tot / StreamMLP
	if charged < 1 {
		charged = 1
	}
	c.spent += charged
	return charged
}

// AccessPipelined performs a demand access whose miss latency overlaps
// with neighbouring independent work — the software-prefetch-across-burst
// pattern of DPDK applications (l3fwd issues the flow-table prefetch for
// packet i+k while processing packet i). The cache state is updated as for
// Access, but only 1/StreamMLP of the latency is charged.
func (c *Ctx) AccessPipelined(a uint64, write bool) int64 {
	lat := c.p.Hier.Access(c.core, a, write, c.mask)
	c.p.instr[c.core]++
	charged := lat / StreamMLP
	if charged < 1 {
		charged = 1
	}
	c.spent += charged
	return charged
}

// Compute retires n non-memory instructions at the platform's base CPI.
func (c *Ctx) Compute(n int64) {
	if n <= 0 {
		return
	}
	c.spent += int64(float64(n) * c.p.Cfg.BaseCPI)
	c.p.instr[c.core] += uint64(n)
}

// Stall burns cycles without retiring instructions (e.g. a pause-loop in a
// rate-limited poller).
func (c *Ctx) Stall(cycles int64) {
	if cycles > 0 {
		c.spent += cycles
	}
}

// CyclesNS converts core cycles to nanoseconds of core time (at the
// unscaled clock), for workload latency metrics.
func (c *Ctx) CyclesNS(cycles int64) float64 {
	return float64(cycles) / c.p.Cfg.FreqGHz
}

// Platform exposes the platform for workloads that need shared structures
// (queues, devices). Workloads must not advance time themselves.
func (c *Ctx) Platform() *Platform { return c.p }
