package sim

import (
	"fmt"

	"iatsim/internal/addr"
	"iatsim/internal/cache"
	"iatsim/internal/ddio"
	"iatsim/internal/mem"
	"iatsim/internal/msr"
	"iatsim/internal/nic"
	"iatsim/internal/rdt"
	"iatsim/internal/telemetry"
	"iatsim/internal/tgen"
)

// Controller is a management-plane agent polled once per epoch (the IAT
// daemon, or a baseline). It observes and programs the machine exclusively
// through the MSR/RDT interfaces.
type Controller interface {
	Tick(nowNS float64)
}

// ControllerFunc adapts a function to the Controller interface.
type ControllerFunc func(nowNS float64)

// Tick implements Controller.
func (f ControllerFunc) Tick(nowNS float64) { f(nowNS) }

// PollFaults perturbs the management plane's polling cadence; the chaos
// harness (internal/faults) implements it with a seeded schedule. SkipPoll
// is asked once per epoch: true suppresses every controller Tick for that
// epoch, modelling scheduler jitter and overrun sleeps on the daemon's
// polling loop.
type PollFaults interface {
	SkipPoll(nowNS float64) bool
}

// genBinding attaches a traffic generator to a device VF.
type genBinding struct {
	gen *tgen.Generator
	dev *nic.Device
	vf  int
}

// Platform is the assembled machine.
type Platform struct {
	Cfg   Config
	Alloc *addr.Allocator
	Mem   *mem.Controller
	Hier  *cache.Hierarchy
	MSR   *msr.File
	RDT   *rdt.Controller
	DDIO  *ddio.Engine

	devices []*nic.Device
	tenants []*Tenant
	gens    []genBinding
	ctrls   []Controller
	tickers []func(nowNS, dtNS float64)

	instr  []uint64 // per-core retired instructions
	cycles []uint64 // per-core unhalted cycles
	debt   []int64  // per-core budget overshoot carried between microticks

	// mbaMiss tracks per-core LLC misses for the MBA throttle model:
	// a throttled class pays extra queueing delay per memory request.
	mbaMiss []uint64

	ambientAcc  float64
	ambientRand uint64

	pollFaults   PollFaults
	skippedPolls uint64
	ctrlSkips    *telemetry.Counter

	// wctx is the reusable worker context. Workers run strictly one at a
	// time and must not retain the *Ctx past Run, so a single platform-
	// resident value replaces the per-worker-per-microtick heap allocation
	// that &Ctx{...} escaping through the Worker interface used to cost.
	wctx Ctx

	tel telemetry.Sink // nil unless AttachTelemetry was called

	nowNS float64
}

// NewPlatform assembles a machine from cfg.
func NewPlatform(cfg Config) *Platform {
	cfg = cfg.withDefaults()
	if err := cfg.Hier.Validate(); err != nil {
		panic(err)
	}
	// Scale divides every rate in the system; memory channel bandwidth is
	// a rate, so it scales too — keeping bandwidth utilisation (and the
	// queueing delays it causes) identical to the unscaled machine.
	if cfg.Mem.BandwidthGBps == 0 {
		cfg.Mem.BandwidthGBps = mem.DefaultConfig().BandwidthGBps
	}
	cfg.Mem.BandwidthGBps /= cfg.Scale
	p := &Platform{
		Cfg:     cfg,
		Alloc:   addr.NewAllocator(1 << 30),
		Mem:     mem.NewController(cfg.Mem),
		MSR:     msr.NewFile(),
		instr:   make([]uint64, cfg.Cores),
		cycles:  make([]uint64, cfg.Cores),
		debt:    make([]int64, cfg.Cores),
		mbaMiss: make([]uint64, cfg.Cores),
	}
	p.Hier = cache.NewHierarchy(cfg.Hier, cfg.FreqGHz, p.Mem)
	p.DDIO = ddio.New(p.MSR, p.Hier, p.Mem)
	var err error
	p.RDT, err = rdt.New(rdt.Config{
		Cores:   cfg.Cores,
		Ways:    cfg.Hier.LLC.Ways,
		NumCLOS: cfg.NumCLOS,
		Slices:  cfg.Hier.LLC.Slices,
	}, p.MSR)
	if err != nil {
		panic(err)
	}
	p.wireCounters()
	return p
}

// wireCounters maps the performance-counter MSR addresses onto the live
// simulation state.
func (p *Platform) wireCounters() {
	llc := p.Hier.LLC()
	for core := 0; core < p.Cfg.Cores; core++ {
		core := core
		p.MSR.MapRead(msr.CoreCounterAddr(core, msr.EvInstructions), func() uint64 { return p.instr[core] })
		p.MSR.MapRead(msr.CoreCounterAddr(core, msr.EvCycles), func() uint64 { return p.cycles[core] })
		p.MSR.MapRead(msr.CoreCounterAddr(core, msr.EvLLCRefs), func() uint64 { return llc.CoreRefs(core) })
		p.MSR.MapRead(msr.CoreCounterAddr(core, msr.EvLLCMisses), func() uint64 { return llc.CoreMisses(core) })
	}
	for s := 0; s < p.Cfg.Hier.LLC.Slices; s++ {
		s := s
		p.MSR.MapRead(msr.CHACounterAddr(s, msr.EvDDIOHit), func() uint64 { return llc.SliceStats(s).DDIOHits })
		p.MSR.MapRead(msr.CHACounterAddr(s, msr.EvDDIOMiss), func() uint64 { return llc.SliceStats(s).DDIOMisses })
	}
}

// AttachTelemetry wires the sink through every assembled layer: the
// LLC's per-slice counters, the memory controller's latency histograms,
// the DDIO engine's datapath counters, and every already-attached NIC.
// Devices added later are wired by AddDevice; externally constructed
// devices (e.g. NVMe) attach themselves via Telemetry(). Passing nil is
// a no-op, keeping every hot path on its zero-cost branch.
func (p *Platform) AttachTelemetry(s telemetry.Sink) {
	if s == nil {
		return
	}
	p.tel = s
	p.ctrlSkips = s.Counter("sim", "", "ctrl_poll_skips")
	p.Hier.LLC().AttachTelemetry(s)
	p.Mem.AttachTelemetry(s)
	p.DDIO.AttachTelemetry(s)
	for _, d := range p.devices {
		d.AttachTelemetry(s)
	}
}

// Telemetry returns the attached sink (nil when uninstrumented).
func (p *Platform) Telemetry() telemetry.Sink { return p.tel }

// AddDevice attaches a NIC.
func (p *Platform) AddDevice(cfg nic.Config) *nic.Device {
	d := nic.NewDevice(cfg, p.DDIO, p.Alloc)
	if p.tel != nil {
		d.AttachTelemetry(p.tel)
	}
	p.devices = append(p.devices, d)
	return d
}

// Devices returns the attached NICs.
func (p *Platform) Devices() []*nic.Device { return p.devices }

// AddTenant registers a tenant and programs its core/CLOS association. The
// tenant's CAT mask must be programmed separately (via RDT or a
// controller).
func (p *Platform) AddTenant(t *Tenant) error {
	if len(t.Workers) != len(t.Cores) {
		return fmt.Errorf("sim: tenant %q has %d workers for %d cores", t.Name, len(t.Workers), len(t.Cores))
	}
	for _, c := range t.Cores {
		if c < 0 || c >= p.Cfg.Cores {
			return fmt.Errorf("sim: tenant %q core %d out of range", t.Name, c)
		}
		if err := p.RDT.Assoc(c, t.CLOS); err != nil {
			return err
		}
	}
	p.tenants = append(p.tenants, t)
	return nil
}

// Tenants returns the registered tenants.
func (p *Platform) Tenants() []*Tenant { return p.tenants }

// TenantByName finds a tenant, or nil.
func (p *Platform) TenantByName(name string) *Tenant {
	for _, t := range p.tenants {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// AttachGenerator points a traffic generator at a device VF.
func (p *Platform) AttachGenerator(g *tgen.Generator, d *nic.Device, vf int) {
	p.gens = append(p.gens, genBinding{gen: g, dev: d, vf: vf})
}

// AddController registers a management-plane agent (IAT or a baseline).
func (p *Platform) AddController(c Controller) { p.ctrls = append(p.ctrls, c) }

// SetPollFaults attaches (or, with nil, removes) a polling-cadence fault
// source consulted once per epoch before the controllers run.
func (p *Platform) SetPollFaults(pf PollFaults) { p.pollFaults = pf }

// SkippedPolls returns how many controller polling epochs were suppressed
// by the attached PollFaults source.
func (p *Platform) SkippedPolls() uint64 { return p.skippedPolls }

// AddMicrotickHook registers a function run once per microtick, after
// traffic ingress and before the cores — the attachment point for devices
// with their own time-driven behaviour (e.g. the NVMe model's command
// service loop).
func (p *Platform) AddMicrotickHook(f func(nowNS, dtNS float64)) {
	p.tickers = append(p.tickers, f)
}

// NowNS returns the simulated time.
func (p *Platform) NowNS() float64 { return p.nowNS }

// CoreInstr returns core's cumulative retired-instruction counter.
func (p *Platform) CoreInstr(core int) uint64 { return p.instr[core] }

// CoreCycles returns core's cumulative unhalted-cycle counter.
func (p *Platform) CoreCycles(core int) uint64 { return p.cycles[core] }

// Step advances the simulation by one epoch: per microtick it runs traffic
// ingress, every tenant worker, and transmit draining, then polls the
// controllers once.
func (p *Platform) Step() {
	cfg := p.Cfg
	p.Mem.BeginEpoch(cfg.EpochNS)
	dt := cfg.EpochNS / float64(cfg.Microticks)
	budget := cfg.CycleBudget()
	for mt := 0; mt < cfg.Microticks; mt++ {
		// Ingress: generators offer load, the devices DMA it in. The
		// offered rate is divided by Scale; cycle budgets are too, so
		// the producer/consumer ratio is preserved.
		for i := range p.gens {
			gb := &p.gens[i]
			n := gb.gen.Arrivals(p.nowNS, dt)
			for k := 0; k < n; k++ {
				if !gb.dev.DeliverRx(gb.vf, gb.gen.Next(), p.nowNS) {
					// A dropped request returns its closed-loop
					// credit (the client's timeout-and-retry).
					gb.gen.Complete()
				}
			}
		}
		for _, f := range p.tickers {
			f(p.nowNS, dt)
		}
		// Cores.
		for _, t := range p.tenants {
			for k, w := range t.Workers {
				core := t.Cores[k]
				carried := p.debt[core]
				if carried >= budget {
					// The core spends the whole microtick paying
					// off earlier overshoot (or MBA stalls).
					p.debt[core] -= budget
					p.cycles[core] += uint64(budget)
					continue
				}
				b := budget - carried
				ctx := &p.wctx
				*ctx = Ctx{
					p:      p,
					core:   core,
					mask:   p.RDT.MaskForCore(core),
					budget: b,
					nowNS:  p.nowNS,
				}
				w.Run(ctx)
				used := ctx.spent
				if used > b {
					p.debt[core] = used - b
					used = b
				} else {
					p.debt[core] = 0
				}
				p.cycles[core] += uint64(used) + uint64(carried)
				p.applyMBA(core)
			}
		}
		// Egress: wire-paced transmit draining.
		for _, d := range p.devices {
			for v := 0; v < d.NumVFs(); v++ {
				d.DrainTx(v, dt)
			}
		}
		p.ambientChurn(dt)
		p.nowNS += dt
	}
	if p.pollFaults != nil && p.pollFaults.SkipPoll(p.nowNS) {
		p.skippedPolls++
		p.ctrlSkips.Inc()
		return
	}
	for _, c := range p.ctrls {
		c.Tick(p.nowNS)
	}
}

// applyMBA charges the Memory Bandwidth Allocation throttle: each LLC miss
// a throttled class generated this microtick pays additional queueing delay
// on the L2-to-memory path (how real MBA works — a request-rate throttle),
// modelled as stall debt of throttle/(100-throttle) extra memory latencies
// per miss.
func (p *Platform) applyMBA(core int) {
	miss := p.Hier.LLC().CoreMisses(core)
	d := miss - p.mbaMiss[core]
	p.mbaMiss[core] = miss
	if d == 0 {
		return
	}
	thr := p.RDT.MBAThrottleForCore(core)
	if thr <= 0 {
		return
	}
	memCycles := p.Cfg.FreqGHz * p.Mem.Config().BaseLatencyNS
	p.debt[core] += int64(float64(d) * memCycles * float64(thr) / float64(100-thr))
}

// ambientChurn injects the configured background LLC fill traffic for one
// microtick (see Config.AmbientFillPS).
func (p *Platform) ambientChurn(dtNS float64) {
	rate := p.Cfg.AmbientFillPS
	if rate <= 0 {
		return
	}
	p.ambientAcc += rate / p.Cfg.Scale * dtNS / 1e9
	n := int(p.ambientAcc)
	p.ambientAcc -= float64(n)
	llc := p.Hier.LLC()
	for i := 0; i < n; i++ {
		// xorshift over a private region far above the allocator.
		p.ambientRand = p.ambientRand*0x5DEECE66D + 0xB
		a := (uint64(1)<<40 | (p.ambientRand >> 8 << 6))
		if v := llc.AmbientFill(a); v.Valid && v.Dirty {
			p.Mem.Write(64)
		}
	}
}

// Run advances the simulation by durNS of simulated time (rounded up to
// whole epochs).
func (p *Platform) Run(durNS float64) {
	end := p.nowNS + durNS
	for p.nowNS < end {
		p.Step()
	}
}

// GeneratorRate rescales a generator's offered rate by the platform scale:
// pass the unscaled (paper-world) packets-per-second figure and the
// generator will be driven at pps/Scale in the simulation.
func (p *Platform) GeneratorRate(unscaledPPS float64) float64 {
	return unscaledPPS / p.Cfg.Scale
}

// ScaledPPS converts a measured simulation packet rate back to the
// paper-world rate.
func (p *Platform) ScaledPPS(simPPS float64) float64 { return simPPS * p.Cfg.Scale }
