package sim

import (
	"testing"

	"iatsim/internal/telemetry"
)

// skipFirstN suppresses the first n polling epochs.
type skipFirstN struct{ n, asked int }

func (s *skipFirstN) SkipPoll(nowNS float64) bool {
	s.asked++
	return s.asked <= s.n
}

func TestPollFaultsSuppressControllerTicks(t *testing.T) {
	p := NewPlatform(smallConfig())
	reg := telemetry.NewRegistry()
	p.AttachTelemetry(reg)
	ticks := 0
	p.AddController(ControllerFunc(func(nowNS float64) { ticks++ }))
	pf := &skipFirstN{n: 3}
	p.SetPollFaults(pf)

	p.Run(5e6) // 5 epochs: 3 skipped, 2 polled
	if ticks != 2 {
		t.Fatalf("controller ticked %d times, want 2", ticks)
	}
	if p.SkippedPolls() != 3 {
		t.Fatalf("SkippedPolls = %d, want 3", p.SkippedPolls())
	}
	if pf.asked != 5 {
		t.Fatalf("injector consulted %d times, want once per epoch (5)", pf.asked)
	}
	if got := reg.Counter("sim", "", "ctrl_poll_skips").Value(); got != 3 {
		t.Fatalf("ctrl_poll_skips counter = %d, want 3", got)
	}

	// Removing the source restores the normal cadence.
	p.SetPollFaults(nil)
	p.Run(2e6)
	if ticks != 4 || p.SkippedPolls() != 3 {
		t.Fatalf("after removal: ticks=%d skipped=%d", ticks, p.SkippedPolls())
	}
}
