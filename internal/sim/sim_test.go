package sim

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/msr"
)

func smallConfig() Config {
	cfg := XeonGold6140(100)
	cfg.Hier = cache.HierarchyConfig{
		Cores: 4,
		L1:    cache.LevelConfig{SizeBytes: 4 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 32 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 256, HitCycles: 44},
	}
	cfg.Cores = 4
	return cfg
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{Cores: 1, FreqGHz: 1, Hier: smallConfig().Hier}).withDefaults()
	if c.Scale != 1 || c.EpochNS != 1e6 || c.Microticks != 20 || c.NumCLOS != 16 || c.BaseCPI != 0.5 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.AmbientFillPS != 20e6 {
		t.Fatalf("ambient default = %v", c.AmbientFillPS)
	}
}

func TestCycleBudget(t *testing.T) {
	cfg := XeonGold6140(100)
	// 2.3GHz * 50us / 100 = 1150 cycles per microtick.
	if b := cfg.CycleBudget(); b < 1149 || b > 1150 { // float rounding
		t.Fatalf("budget = %d", b)
	}
}

func TestXeonGold6140MatchesTableI(t *testing.T) {
	cfg := XeonGold6140(1)
	if cfg.Cores != 18 || cfg.FreqGHz != 2.3 {
		t.Fatalf("cpu = %d cores @ %.1f", cfg.Cores, cfg.FreqGHz)
	}
	if cfg.Hier.LLC.Ways != 11 || cfg.Hier.LLC.Slices != 18 {
		t.Fatalf("llc = %+v", cfg.Hier.LLC)
	}
	if cfg.Hier.LLC.SizeBytes() != int(24.75*(1<<20)) {
		t.Fatalf("llc size = %d", cfg.Hier.LLC.SizeBytes())
	}
}

// spinWorker burns its whole budget on compute.
type spinWorker struct{ ops uint64 }

func (w *spinWorker) Run(ctx *Ctx) {
	for ctx.Remaining() > 0 {
		ctx.Compute(100)
		w.ops++
	}
}

// touchWorker accesses one line per invocation then stops (partially idle
// core).
type touchWorker struct{ addr uint64 }

func (w *touchWorker) Run(ctx *Ctx) {
	ctx.Access(w.addr, false)
}

func TestTenantValidation(t *testing.T) {
	p := NewPlatform(smallConfig())
	if err := p.AddTenant(&Tenant{Name: "bad", Cores: []int{0, 1}, Workers: []Worker{&spinWorker{}}}); err == nil {
		t.Error("mismatched workers/cores accepted")
	}
	if err := p.AddTenant(&Tenant{Name: "bad2", Cores: []int{99}, Workers: []Worker{&spinWorker{}}}); err == nil {
		t.Error("out-of-range core accepted")
	}
	if err := p.AddTenant(&Tenant{Name: "ok", Cores: []int{0}, CLOS: 1, Workers: []Worker{&spinWorker{}}}); err != nil {
		t.Fatal(err)
	}
	if p.TenantByName("ok") == nil || p.TenantByName("nope") != nil {
		t.Error("TenantByName wrong")
	}
}

func TestCountersFlowThroughMSRs(t *testing.T) {
	p := NewPlatform(smallConfig())
	w := &spinWorker{}
	if err := p.AddTenant(&Tenant{Name: "spin", Cores: []int{0}, CLOS: 1, Workers: []Worker{w}}); err != nil {
		t.Fatal(err)
	}
	p.Run(10e6)
	instr := p.MSR.Peek(msr.CoreCounterAddr(0, msr.EvInstructions))
	cycles := p.MSR.Peek(msr.CoreCounterAddr(0, msr.EvCycles))
	if instr == 0 || cycles == 0 {
		t.Fatalf("MSR counters: instr=%d cycles=%d", instr, cycles)
	}
	if instr != p.CoreInstr(0) || cycles != p.CoreCycles(0) {
		t.Fatal("MSR view disagrees with platform view")
	}
	// A compute-only spinner at BaseCPI=0.5 retires ~2 IPC.
	ipc := float64(instr) / float64(cycles)
	if ipc < 1.9 || ipc > 2.1 {
		t.Fatalf("spin IPC = %.2f, want ~2.0", ipc)
	}
}

func TestIdleCoreAccumulatesNoCycles(t *testing.T) {
	p := NewPlatform(smallConfig())
	w := &touchWorker{addr: 0x1000}
	if err := p.AddTenant(&Tenant{Name: "touch", Cores: []int{1}, CLOS: 1, Workers: []Worker{w}}); err != nil {
		t.Fatal(err)
	}
	p.Run(10e6)
	// One access per microtick: far fewer cycles than the full budget.
	budget := uint64(p.Cfg.CycleBudget()) * uint64(10e6/p.Cfg.EpochNS*float64(p.Cfg.Microticks))
	if c := p.CoreCycles(1); c >= budget/2 {
		t.Fatalf("mostly idle core counted %d of %d budget cycles", c, budget)
	}
}

// hogWorker overshoots its budget in one operation (simulating a long
// uninterruptible op), testing debt carry.
type hogWorker struct{ runs int }

func (w *hogWorker) Run(ctx *Ctx) {
	w.runs++
	ctx.Stall(10 * ctx.Remaining()) // 10x overshoot
}

func TestBudgetDebtCarry(t *testing.T) {
	p := NewPlatform(smallConfig())
	w := &hogWorker{}
	if err := p.AddTenant(&Tenant{Name: "hog", Cores: []int{0}, CLOS: 1, Workers: []Worker{w}}); err != nil {
		t.Fatal(err)
	}
	p.Run(1e6) // 20 microticks
	// With a 10x overshoot the worker must be scheduled roughly every
	// 10th microtick, not every microtick.
	if w.runs > 4 {
		t.Fatalf("hog ran %d times in 20 microticks despite debt", w.runs)
	}
}

func TestControllersTickOncePerEpoch(t *testing.T) {
	p := NewPlatform(smallConfig())
	n := 0
	p.AddController(ControllerFunc(func(nowNS float64) { n++ }))
	p.Run(5e6)
	if n != 5 {
		t.Fatalf("controller ticked %d times over 5 epochs", n)
	}
}

func TestTimeAdvances(t *testing.T) {
	p := NewPlatform(smallConfig())
	p.Run(3e6)
	if p.NowNS() != 3e6 {
		t.Fatalf("now = %v", p.NowNS())
	}
}

func TestGeneratorRateScaling(t *testing.T) {
	p := NewPlatform(smallConfig())
	if p.GeneratorRate(1e6) != 1e4 {
		t.Fatalf("scaled rate = %v", p.GeneratorRate(1e6))
	}
	if p.ScaledPPS(1e4) != 1e6 {
		t.Fatalf("unscaled rate = %v", p.ScaledPPS(1e4))
	}
}

func TestAmbientChurnRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbientFillPS = 1e9 // heavy, scaled to 1e7/s
	p := NewPlatform(cfg)
	p.Run(2e6)
	occ := 0
	for _, n := range p.Hier.LLC().OccupancyByWay() {
		occ += n
	}
	if occ == 0 {
		t.Fatal("ambient churn left the LLC empty")
	}
	// Ambient churn must not pollute demand counters.
	if p.Hier.LLC().CoreRefs(0) != 0 {
		t.Fatal("ambient churn counted as demand references")
	}
}

func TestAmbientChurnDisable(t *testing.T) {
	cfg := smallConfig()
	cfg.AmbientFillPS = -1
	p := NewPlatform(cfg)
	p.Run(2e6)
	occ := 0
	for _, n := range p.Hier.LLC().OccupancyByWay() {
		occ += n
	}
	if occ != 0 {
		t.Fatal("disabled ambient churn still filled the LLC")
	}
}

func TestMaskForCoreFollowsAssoc(t *testing.T) {
	p := NewPlatform(smallConfig())
	if err := p.RDT.SetCLOSMask(3, cache.ContiguousMask(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTenant(&Tenant{Name: "x", Cores: []int{2}, CLOS: 3, Workers: []Worker{&spinWorker{}}}); err != nil {
		t.Fatal(err)
	}
	if got := p.RDT.MaskForCore(2); got != cache.ContiguousMask(2, 2) {
		t.Fatalf("effective mask = %v", got)
	}
}

func TestPriorityString(t *testing.T) {
	if BestEffort.String() != "BE" || PerformanceCritical.String() != "PC" || Stack.String() != "stack" {
		t.Error("priority strings wrong")
	}
}

// memWorker hammers memory with LLC misses (random over a huge region).
type memWorker struct {
	next uint64
	ops  uint64
}

func (w *memWorker) Run(ctx *Ctx) {
	for ctx.Remaining() > 0 {
		w.next = w.next*6364136223846793005 + 1442695040888963407
		ctx.Access(1<<35|(w.next>>8<<6), false)
		w.ops++
	}
}

func TestMBAThrottleSlowsMemoryBoundClass(t *testing.T) {
	run := func(throttle int) uint64 {
		p := NewPlatform(smallConfig())
		w := &memWorker{next: 1}
		if err := p.RDT.SetMBAThrottle(2, throttle); err != nil {
			t.Fatal(err)
		}
		if err := p.AddTenant(&Tenant{Name: "m", Cores: []int{0}, CLOS: 2, Workers: []Worker{w}}); err != nil {
			t.Fatal(err)
		}
		p.Run(20e6)
		return w.ops
	}
	free := run(0)
	half := run(50)
	ninety := run(90)
	if half >= free {
		t.Fatalf("50%% MBA throttle did not slow the class: %d vs %d ops", half, free)
	}
	if ninety >= half {
		t.Fatalf("90%% throttle (%d ops) not slower than 50%% (%d)", ninety, half)
	}
}

func TestMBAThrottleSparesCacheResidentClass(t *testing.T) {
	run := func(throttle int) uint64 {
		p := NewPlatform(smallConfig())
		w := &spinWorker{}
		if err := p.RDT.SetMBAThrottle(2, throttle); err != nil {
			t.Fatal(err)
		}
		if err := p.AddTenant(&Tenant{Name: "s", Cores: []int{0}, CLOS: 2, Workers: []Worker{w}}); err != nil {
			t.Fatal(err)
		}
		p.Run(10e6)
		return w.ops
	}
	if free, thr := run(0), run(90); thr < free*99/100 {
		t.Fatalf("compute-bound class hurt by MBA: %d vs %d ops", thr, free)
	}
}

// ctxProbe captures a Ctx for direct method tests.
type ctxProbe struct {
	fn func(*Ctx)
}

func (c *ctxProbe) Run(ctx *Ctx) { c.fn(ctx) }

// withCtx runs fn once inside a real platform microtick.
func withCtx(t *testing.T, fn func(*Ctx)) *Platform {
	t.Helper()
	p := NewPlatform(smallConfig())
	done := false
	probe := &ctxProbe{fn: func(ctx *Ctx) {
		if !done {
			fn(ctx)
			done = true
		}
	}}
	if err := p.AddTenant(&Tenant{Name: "probe", Cores: []int{0}, CLOS: 1, Workers: []Worker{probe}}); err != nil {
		t.Fatal(err)
	}
	p.Step()
	return p
}

func TestCtxComputeChargesBaseCPI(t *testing.T) {
	withCtx(t, func(ctx *Ctx) {
		before := ctx.Remaining()
		ctx.Compute(100)
		if spent := before - ctx.Remaining(); spent != 50 { // BaseCPI 0.5
			t.Fatalf("compute(100) spent %d cycles", spent)
		}
		ctx.Compute(-5) // no-op
		ctx.Stall(7)
		if ctx.Remaining() != before-50-7 {
			t.Fatal("stall accounting wrong")
		}
	})
}

func TestCtxAccessRangeMLPDiscount(t *testing.T) {
	withCtx(t, func(ctx *Ctx) {
		// Serial accesses to cold lines.
		serialStart := ctx.Remaining()
		for i := 0; i < 16; i++ {
			ctx.Access(uint64(0x100000+i*64), false)
		}
		serial := serialStart - ctx.Remaining()
		// Streaming access to equally cold lines.
		streamStart := ctx.Remaining()
		ctx.AccessRange(0x200000, 16*64, false)
		stream := streamStart - ctx.Remaining()
		if stream*2 >= serial {
			t.Fatalf("streaming (%d cy) not clearly cheaper than serial (%d cy)", stream, serial)
		}
	})
}

func TestCtxAccessPipelinedDiscount(t *testing.T) {
	withCtx(t, func(ctx *Ctx) {
		full := ctx.Access(0x300000, false)
		piped := ctx.AccessPipelined(0x310000, false)
		if piped >= full {
			t.Fatalf("pipelined access (%d cy) not cheaper than serial (%d cy)", piped, full)
		}
		if piped < 1 {
			t.Fatalf("pipelined access charged %d", piped)
		}
	})
}

func TestCtxCyclesNSUsesUnscaledClock(t *testing.T) {
	withCtx(t, func(ctx *Ctx) {
		// 2.3 cycles per ns at 2.3GHz, independent of Scale.
		if ns := ctx.CyclesNS(230); ns < 99 || ns > 101 {
			t.Fatalf("CyclesNS(230) = %v", ns)
		}
	})
}

func TestCtxRetiresInstructionsPerAccess(t *testing.T) {
	p := withCtx(t, func(ctx *Ctx) {
		ctx.Access(0x400000, false)
		ctx.AccessRange(0x500000, 4*64, false)
		ctx.Compute(10)
	})
	// 1 + 4 + 10 retired.
	if got := p.CoreInstr(0); got != 15 {
		t.Fatalf("retired %d instructions, want 15", got)
	}
}

func TestCtxCoreAndNow(t *testing.T) {
	withCtx(t, func(ctx *Ctx) {
		if ctx.Core() != 0 {
			t.Fatalf("core = %d", ctx.Core())
		}
		if ctx.NowNS() < 0 {
			t.Fatal("NowNS negative")
		}
		if ctx.Platform() == nil {
			t.Fatal("platform not exposed")
		}
	})
}
