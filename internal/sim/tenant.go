package sim

// Priority is a tenant's scheduling class (Sec. IV-A of the paper: modern
// clusters hint priorities; IAT assumes performance-critical and
// best-effort, plus a special class for the aggregation model's software
// stack).
type Priority int

// Priority values.
const (
	// BestEffort (BE) tenants are the shuffling candidates that may be
	// made to share LLC ways with DDIO.
	BestEffort Priority = iota
	// PerformanceCritical (PC) tenants are isolated from DDIO's ways as
	// much as possible.
	PerformanceCritical
	// Stack marks the aggregation model's centralised software stack
	// (e.g. the OVS virtual switch): not a tenant, but tracked with a
	// special priority (Sec. IV-A).
	Stack
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case BestEffort:
		return "BE"
	case PerformanceCritical:
		return "PC"
	case Stack:
		return "stack"
	}
	return "?"
}

// Worker is one core's worth of a tenant's workload. Run is called once per
// microtick with a fresh execution context holding the core's cycle budget;
// the worker consumes budget via ctx.Access and ctx.Compute until
// ctx.Remaining() <= 0, or returns early if it is genuinely idle (non-
// polling batch work that has finished).
type Worker interface {
	Run(ctx *Ctx)
}

// Tenant is a container/VM: a name, the cores it is pinned to, its CAT
// class of service, its priority, whether its workload is I/O ("networking"
// in the paper's terms), and one Worker per core.
type Tenant struct {
	Name     string
	Cores    []int
	CLOS     int
	Priority Priority
	// IsIO marks networking tenants: IAT uses this to attribute
	// performance fluctuations to I/O vs. pure core phases (Sec. IV-A).
	IsIO bool
	// Workers run the tenant's code, parallel to Cores.
	Workers []Worker
}
