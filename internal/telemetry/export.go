package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// WriteCSV renders the snapshot's metrics as CSV with one row per
// scalar. Counters and gauges are single rows with an empty bucket
// column; each histogram expands to a "count" row, a "sum" row, one
// "le:<bound>" row per bucket, and a final "le:+Inf" row. Rows follow
// snapshot order, i.e. sorted by (subsystem, scope, name).
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_ns", "subsystem", "scope", "name", "kind", "bucket", "value"}); err != nil {
		return err
	}
	ts := formatFloat(s.TimeNS)
	row := func(m Metric, bucket, value string) error {
		return cw.Write([]string{ts, m.Subsystem, m.Scope, m.Name, m.Kind.String(), bucket, value})
	}
	for _, m := range s.Metrics {
		var err error
		switch m.Kind {
		case KindCounter:
			err = row(m, "", strconv.FormatUint(m.Counter, 10))
		case KindGauge:
			err = row(m, "", formatFloat(m.Gauge))
		case KindHistogram:
			if err = row(m, "count", strconv.FormatUint(m.Hist.Count, 10)); err != nil {
				return err
			}
			if err = row(m, "sum", formatFloat(m.Hist.Sum)); err != nil {
				return err
			}
			for i, b := range m.Hist.Bounds {
				if err = row(m, "le:"+formatFloat(b), strconv.FormatUint(m.Hist.Counts[i], 10)); err != nil {
					return err
				}
			}
			err = row(m, "le:+Inf", strconv.FormatUint(m.Hist.Counts[len(m.Hist.Bounds)], 10))
		}
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSON renders the snapshot as indented JSON. The encoding is
// deterministic: Snapshot is slices-only, and struct fields marshal in
// declaration order.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// chromeTraceEvent is one entry of the Chrome trace_event format
// (Perfetto / chrome://tracing "JSON Object Format"). Only the fields
// we emit are modeled.
type chromeTraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeTraceEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the snapshot as Chrome trace_event JSON
// loadable by Perfetto or chrome://tracing: a process-name metadata
// record, every ring event as an instant event ("i", categorized by
// subsystem), and every counter/gauge as a "C" counter sample at the
// snapshot time. Output order is deterministic: metadata, then events
// in emission order, then metrics in snapshot order.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	t := chromeTrace{TraceEvents: []chromeTraceEvent{{
		Name: "process_name", Phase: "M", PID: 1, TID: 1,
		Args: map[string]any{"name": "iatsim"},
	}}}
	for _, ev := range s.Events {
		name := ev.Name
		if ev.Detail != "" {
			name += " " + ev.Detail
		}
		t.TraceEvents = append(t.TraceEvents, chromeTraceEvent{
			Name: name, Phase: "i", TS: ev.TimeNS / 1e3, PID: 1, TID: 1,
			Cat: ev.Subsystem, Scope: "p",
			Args: map[string]any{"sev": ev.Sev.String()},
		})
	}
	for _, m := range s.Metrics {
		var v float64
		switch m.Kind {
		case KindCounter:
			v = float64(m.Counter)
		case KindGauge:
			v = m.Gauge
		default:
			continue // histograms have no counter-track rendering
		}
		name := m.Subsystem + "/" + m.Name
		if m.Scope != "" {
			name = m.Subsystem + "/" + m.Scope + "/" + m.Name
		}
		t.TraceEvents = append(t.TraceEvents, chromeTraceEvent{
			Name: name, Phase: "C", TS: s.TimeNS / 1e3, PID: 1, TID: 1,
			Cat:  m.Subsystem,
			Args: map[string]any{"value": v},
		})
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFiles writes the snapshot in all three formats: base.csv,
// base.json, and base.trace.json.
func (s *Snapshot) WriteFiles(base string) error {
	if dir := filepath.Dir(base); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(base+".csv", s.WriteCSV); err != nil {
		return err
	}
	if err := write(base+".json", s.WriteJSON); err != nil {
		return err
	}
	return write(base+".trace.json", s.WriteChromeTrace)
}

// ReadSnapshotFile loads and validates a snapshot JSON file written by
// WriteJSON/WriteFiles.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return &s, nil
}

// ValidateSnapshotJSON checks that data is a well-formed snapshot file:
// it unmarshals and passes Snapshot.Validate.
func ValidateSnapshotJSON(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	return s.Validate()
}

// ValidateChromeTrace structurally checks Chrome trace_event JSON as
// Perfetto's JSON importer would: a traceEvents array whose entries all
// carry a name, a known phase, a finite ts, and pid/tid.
func ValidateChromeTrace(data []byte) error {
	var t struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return err
	}
	if t.TraceEvents == nil {
		return fmt.Errorf("telemetry: no traceEvents array")
	}
	for i, ev := range t.TraceEvents {
		name, _ := ev["name"].(string)
		if name == "" {
			return fmt.Errorf("telemetry: traceEvents[%d] has no name", i)
		}
		ph, _ := ev["ph"].(string)
		switch ph {
		case "M": // metadata: no ts required
		case "i", "C", "B", "E", "X":
			if _, ok := ev["ts"].(float64); !ok {
				return fmt.Errorf("telemetry: traceEvents[%d] (%s) has no numeric ts", i, name)
			}
		default:
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has unsupported phase %q", i, name, ph)
		}
		if _, ok := ev["pid"].(float64); !ok {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has no pid", i, name)
		}
		if _, ok := ev["tid"].(float64); !ok {
			return fmt.Errorf("telemetry: traceEvents[%d] (%s) has no tid", i, name)
		}
	}
	return nil
}
