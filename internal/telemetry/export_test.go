package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// sampleSnapshot builds the fixed snapshot behind the golden files: one
// of every metric kind plus events at two severities.
func sampleSnapshot() *Snapshot {
	r := NewRegistry()
	r.Counter("cache", "slice0", "hits").Add(41)
	r.Counter("cache", "slice0", "misses").Add(7)
	r.Gauge("nic", "vf0", "rx_ring_occupancy").Set(12.5)
	h := r.Histogram("mem", "", "read_latency_ns", []float64{60, 120, 240})
	for _, v := range []float64{50, 100, 200, 400, 90} {
		h.Observe(v)
	}
	r.Emit(Event{TimeNS: 1e9, Sev: SevInfo, Subsystem: "daemon", Name: "state", Detail: "LowKeep->IODemand"})
	r.Emit(Event{TimeNS: 1.5e9, Sev: SevDebug, Subsystem: "daemon", Name: "mask_write", Detail: "ddio=0x3"})
	return r.Snapshot(2e9)
}

// checkGolden compares rendered bytes against testdata/<name>, or
// rewrites the golden under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func render(t *testing.T, f func(w *bytes.Buffer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := f(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenCSV(t *testing.T) {
	s := sampleSnapshot()
	checkGolden(t, "snapshot.csv", render(t, func(w *bytes.Buffer) error { return s.WriteCSV(w) }))
}

func TestGoldenJSON(t *testing.T) {
	s := sampleSnapshot()
	checkGolden(t, "snapshot.json", render(t, func(w *bytes.Buffer) error { return s.WriteJSON(w) }))
}

func TestGoldenChromeTrace(t *testing.T) {
	s := sampleSnapshot()
	checkGolden(t, "snapshot.trace.json", render(t, func(w *bytes.Buffer) error { return s.WriteChromeTrace(w) }))
}

// The Chrome trace must pass the same structural checks Perfetto's JSON
// importer applies, independent of the golden bytes.
func TestChromeTraceStructure(t *testing.T) {
	s := sampleSnapshot()
	data := render(t, func(w *bytes.Buffer) error { return s.WriteChromeTrace(w) })
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	var instants, counters int
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "i":
			instants++
			// trace_event ts is microseconds; events sit at 1s and 1.5s.
			if ev.TS != 1e6 && ev.TS != 1.5e6 {
				t.Fatalf("instant %q at ts=%v, want µs conversion of sim time", ev.Name, ev.TS)
			}
		case "C":
			counters++
			if ev.TS != 2e6 {
				t.Fatalf("counter %q at ts=%v, want snapshot time 2e6 µs", ev.Name, ev.TS)
			}
		}
	}
	if instants != 2 {
		t.Fatalf("trace has %d instant events, want 2", instants)
	}
	// Histograms are not representable as trace counters; the two
	// cache counters and the NIC gauge are.
	if counters != 3 {
		t.Fatalf("trace has %d counter events, want 3", counters)
	}

	if ValidateChromeTrace([]byte(`{}`)) == nil {
		t.Fatal("trace without traceEvents accepted")
	}
	if ValidateChromeTrace([]byte(`{"traceEvents":[{"ph":"i","pid":1,"tid":1,"ts":0}]}`)) == nil {
		t.Fatal("unnamed trace event accepted")
	}
}

func TestWriteFilesRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	base := filepath.Join(t.TempDir(), "sub", "snap") // WriteFiles must create parents
	if err := s.WriteFiles(base); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeNS != s.TimeNS || len(got.Metrics) != len(s.Metrics) || len(got.Events) != len(s.Events) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range s.Metrics {
		if got.Metrics[i].Key() != s.Metrics[i].Key() || got.Metrics[i].Kind != s.Metrics[i].Kind {
			t.Fatalf("metric %d mismatch: %+v vs %+v", i, got.Metrics[i], s.Metrics[i])
		}
	}
	for _, ext := range []string{".csv", ".trace.json"} {
		if _, err := os.Stat(base + ext); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(base + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON([]byte(`{"metrics":[{"subsystem":"b","name":"x","kind":"counter"},{"subsystem":"a","name":"x","kind":"counter"}]}`)); err == nil {
		t.Fatal("unsorted snapshot JSON accepted")
	}
}
