package telemetry

import (
	"fmt"
	"sort"
)

// Merge combines snapshots cut from independent registries — one per
// fleet host — into a single rollup stamped at timeNS. Counters and
// histogram buckets are summed; gauges are summed too (fleet gauges are
// occupancy-style totals — divide by the host count for a mean). Metric
// sets may be disjoint: the result is the union, with absent hosts
// contributing zero. Events are not merged — per-host rings have no
// meaningful global interleaving — so the result carries none; per-host
// event streams stay in the per-host snapshots. Nil snapshots are
// skipped. A histogram registered with different bucket bounds on
// different hosts indicates divergent instrumentation and is an error,
// as is a key that changes kind between snapshots.
func Merge(timeNS float64, snaps ...*Snapshot) (*Snapshot, error) {
	merged := map[Key]*Metric{}
	keys := make([]Key, 0)
	for i, s := range snaps {
		if s == nil {
			continue
		}
		for _, m := range s.Metrics {
			k := m.Key()
			acc, ok := merged[k]
			if !ok {
				cp := m
				if m.Hist != nil {
					cp.Hist = &HistogramData{
						Bounds: append([]float64(nil), m.Hist.Bounds...),
						Counts: append([]uint64(nil), m.Hist.Counts...),
						Count:  m.Hist.Count,
						Sum:    m.Hist.Sum,
					}
				}
				merged[k] = &cp
				keys = append(keys, k)
				continue
			}
			if acc.Kind != m.Kind {
				return nil, fmt.Errorf("telemetry: merge %v: kind %v vs %v (snapshot %d)", k, acc.Kind, m.Kind, i)
			}
			switch m.Kind {
			case KindCounter:
				acc.Counter += m.Counter
			case KindGauge:
				acc.Gauge += m.Gauge
			case KindHistogram:
				if m.Hist == nil {
					continue // zero-valued histogram contributes nothing
				}
				if acc.Hist == nil {
					return nil, fmt.Errorf("telemetry: merge %v: histogram without bucket data", k)
				}
				if !equalBounds(acc.Hist.Bounds, m.Hist.Bounds) || len(acc.Hist.Counts) != len(m.Hist.Counts) {
					return nil, fmt.Errorf("telemetry: merge %v: mismatched histogram bounds (snapshot %d)", k, i)
				}
				for j, c := range m.Hist.Counts {
					acc.Hist.Counts[j] += c
				}
				acc.Hist.Count += m.Hist.Count
				acc.Hist.Sum += m.Hist.Sum
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	out := &Snapshot{TimeNS: timeNS, Metrics: make([]Metric, 0, len(keys))}
	for _, k := range keys {
		out.Metrics = append(out.Metrics, *merged[k])
	}
	return out, nil
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
