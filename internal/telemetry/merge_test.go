package telemetry

import "testing"

func TestDiffDisjointMetricSets(t *testing.T) {
	// Two snapshots with no keys in common: every row must carry a zero
	// on its missing side, and the union must come out sorted.
	ra := NewRegistry()
	ra.Counter("cache", "", "hits").Add(5)
	ra.Gauge("nic", "vf0", "occ").Set(3)
	before := ra.Snapshot(1e9)

	rb := NewRegistry()
	rb.Counter("ddio", "", "drops").Add(2)
	rb.Histogram("mem", "", "lat", []float64{10}).Observe(4)
	after := rb.Snapshot(2e9)

	ds := Diff(before, after)
	want := []Delta{
		{Key{"cache", "", "hits"}, KindCounter, 5, 0},
		{Key{"ddio", "", "drops"}, KindCounter, 0, 2},
		{Key{"mem", "", "lat"}, KindHistogram, 0, 1},
		{Key{"nic", "vf0", "occ"}, KindGauge, 3, 0},
	}
	if len(ds) != len(want) {
		t.Fatalf("diff has %d rows, want %d: %+v", len(ds), len(want), ds)
	}
	for i, w := range want {
		if ds[i] != w {
			t.Fatalf("diff[%d] = %+v, want %+v", i, ds[i], w)
		}
	}
}

func TestMergeSumsAcrossRegistries(t *testing.T) {
	mk := func(hits uint64, occ float64, lat ...float64) *Snapshot {
		r := NewRegistry()
		r.Counter("cache", "", "hits").Add(hits)
		r.Gauge("nic", "vf0", "occ").Set(occ)
		h := r.Histogram("mem", "", "lat", []float64{10, 100})
		for _, v := range lat {
			h.Observe(v)
		}
		r.Emit(Event{TimeNS: 1, Sev: SevInfo, Subsystem: "x", Name: "e"})
		return r.Snapshot(5e9)
	}
	a := mk(3, 1.5, 5)
	b := mk(4, 2.5, 50, 500)

	m, err := Merge(7e9, a, nil, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TimeNS != 7e9 {
		t.Fatalf("TimeNS = %v", m.TimeNS)
	}
	if len(m.Events) != 0 || m.EventsDropped != 0 {
		t.Fatalf("merged snapshot carries events: %+v", m.Events)
	}
	byKey := map[Key]Metric{}
	for _, mm := range m.Metrics {
		byKey[mm.Key()] = mm
	}
	if got := byKey[Key{"cache", "", "hits"}].Counter; got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := byKey[Key{"nic", "vf0", "occ"}].Gauge; got != 4 {
		t.Fatalf("merged gauge = %v, want 4", got)
	}
	h := byKey[Key{"mem", "", "lat"}].Hist
	if h == nil || h.Count != 3 || h.Sum != 555 {
		t.Fatalf("merged histogram = %+v", h)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 {
		t.Fatalf("merged buckets = %v", h.Counts)
	}

	// The merge must not alias the input snapshots.
	h.Counts[0] = 99
	if a.Metrics[0].Hist != nil && a.Metrics[0].Hist.Counts[0] == 99 {
		t.Fatal("merge aliased input histogram")
	}
}

func TestMergeDisjointSetsIsUnion(t *testing.T) {
	ra := NewRegistry()
	ra.Counter("cache", "", "hits").Add(5)
	rb := NewRegistry()
	rb.Counter("ddio", "", "drops").Add(2)

	m, err := Merge(0, ra.Snapshot(0), rb.Snapshot(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Metrics) != 2 {
		t.Fatalf("union has %d metrics, want 2", len(m.Metrics))
	}
	if m.Metrics[0].Key() != (Key{"cache", "", "hits"}) || m.Metrics[1].Key() != (Key{"ddio", "", "drops"}) {
		t.Fatalf("union keys out of order: %+v", m.Metrics)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMergeKeyCollisions pins the collision semantics: metrics collide
// (and sum) only on the full (subsystem, scope, name) key — the same
// subsystem/name under different scopes are distinct rows, which is what
// lets per-policy shadow counters survive a fleet-wide merge.
func TestMergeKeyCollisions(t *testing.T) {
	mk := func(scope string, n uint64) *Snapshot {
		r := NewRegistry()
		r.Counter("policy", scope, "shadow_ticks").Add(n)
		return r.Snapshot(0)
	}
	m, err := Merge(0, mk("greedy", 3), mk("static:2", 5), mk("greedy", 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Metrics) != 2 {
		t.Fatalf("merge has %d metrics, want 2 (one per scope): %+v", len(m.Metrics), m.Metrics)
	}
	byKey := map[Key]uint64{}
	for _, mm := range m.Metrics {
		byKey[mm.Key()] = mm.Counter
	}
	if byKey[Key{"policy", "greedy", "shadow_ticks"}] != 7 {
		t.Errorf("colliding keys did not sum: %+v", byKey)
	}
	if byKey[Key{"policy", "static:2", "shadow_ticks"}] != 5 {
		t.Errorf("distinct scope was not kept separate: %+v", byKey)
	}
}

// TestMergeEmptyInputs: merges of nothing — no snapshots, nil snapshots,
// snapshots of never-written registries — yield a valid empty snapshot,
// and an empty input never perturbs a real one.
func TestMergeEmptyInputs(t *testing.T) {
	for _, tc := range []struct {
		name  string
		snaps []*Snapshot
	}{
		{"no snapshots", nil},
		{"all nil", []*Snapshot{nil, nil}},
		{"empty registries", []*Snapshot{NewRegistry().Snapshot(0), NewRegistry().Snapshot(0)}},
	} {
		m, err := Merge(3e9, tc.snaps...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(m.Metrics) != 0 || m.TimeNS != 3e9 {
			t.Fatalf("%s: merged = %+v, want empty at 3e9", tc.name, m)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}

	// Empty + real = real, byte-for-byte on the metric rows.
	r := NewRegistry()
	r.Counter("cache", "", "hits").Add(9)
	r.Gauge("nic", "", "occ").Set(1.5)
	real := r.Snapshot(1e9)
	m, err := Merge(1e9, NewRegistry().Snapshot(0), real, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Metrics) != len(real.Metrics) {
		t.Fatalf("empty input changed the row count: %d vs %d", len(m.Metrics), len(real.Metrics))
	}
	for i := range m.Metrics {
		if m.Metrics[i].Key() != real.Metrics[i].Key() || m.Metrics[i].Counter != real.Metrics[i].Counter || m.Metrics[i].Gauge != real.Metrics[i].Gauge {
			t.Fatalf("metric %d diverged: %+v vs %+v", i, m.Metrics[i], real.Metrics[i])
		}
	}
}

func TestMergeRejectsDivergentInstrumentation(t *testing.T) {
	ra := NewRegistry()
	ra.Histogram("mem", "", "lat", []float64{10}).Observe(1)
	rb := NewRegistry()
	rb.Histogram("mem", "", "lat", []float64{20}).Observe(1)
	if _, err := Merge(0, ra.Snapshot(0), rb.Snapshot(0)); err == nil {
		t.Fatal("mismatched histogram bounds accepted")
	}

	rc := NewRegistry()
	rc.Counter("mem", "", "lat").Inc()
	if _, err := Merge(0, ra.Snapshot(0), rc.Snapshot(0)); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}
