package telemetry

import (
	"encoding/json"
	"fmt"
)

// Severity classifies events for filtering. Ordering matters: a filter
// at SevInfo passes SevInfo and SevWarn.
type Severity uint8

const (
	SevDebug Severity = iota
	SevInfo
	SevWarn
)

func (s Severity) String() string {
	switch s {
	case SevDebug:
		return "debug"
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	}
	return "unknown"
}

// MarshalJSON renders the severity as its lowercase name so snapshot
// files are self-describing.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names emitted by MarshalJSON.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "debug":
		*s = SevDebug
	case "info":
		*s = SevInfo
	case "warn":
		*s = SevWarn
	default:
		return fmt.Errorf("telemetry: unknown severity %q", name)
	}
	return nil
}

// Event is one structured occurrence on the sim timeline. TimeNS is sim
// time — emitters stamp it from their own clock; wall clock is banned
// here (detlint). Seq is assigned by the registry at Emit and makes
// emission order recoverable even when two events share a timestamp.
//
// Data carries an optional typed payload for in-process renderers (the
// Fig. 11 trace writer reads core.IterationInfo from it). It is
// excluded from JSON exports: payloads are arbitrary structs and would
// make snapshot bytes depend on fields outside telemetry's control.
type Event struct {
	TimeNS    float64  `json:"time_ns"`
	Seq       uint64   `json:"seq"`
	Sev       Severity `json:"sev"`
	Subsystem string   `json:"subsystem"`
	Name      string   `json:"name"`
	Detail    string   `json:"detail,omitempty"`
	Data      any      `json:"-"`
}

// ring is a bounded overwrite-oldest event buffer. cap <= 0 means
// capture is disabled (every push just counts a drop).
type ring struct {
	buf     []Event
	start   int // index of oldest event
	n       int // live events in buf
	seq     uint64
	dropped uint64
}

func newRing(capacity int) ring {
	if capacity < 0 {
		capacity = 0
	}
	return ring{buf: make([]Event, capacity)}
}

func (r *ring) push(ev Event) {
	r.seq++
	ev.Seq = r.seq
	if len(r.buf) == 0 {
		r.dropped++
		return
	}
	if r.n == len(r.buf) {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
		return
	}
	r.buf[(r.start+r.n)%len(r.buf)] = ev
	r.n++
}

// events returns the live contents oldest-first, filtered by minimum
// severity and (when non-empty) subsystem.
func (r *ring) events(minSev Severity, subsystem string) []Event {
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		ev := r.buf[(r.start+i)%len(r.buf)]
		if ev.Sev < minSev {
			continue
		}
		if subsystem != "" && ev.Subsystem != subsystem {
			continue
		}
		out = append(out, ev)
	}
	return out
}
