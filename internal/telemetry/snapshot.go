package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Kind marshals as its lowercase name ("counter"/"gauge"/"histogram").
func (k Kind) MarshalJSON() ([]byte, error) {
	if k > KindHistogram {
		return nil, fmt.Errorf("telemetry: unknown kind %d", k)
	}
	return json.Marshal(k.String())
}

// UnmarshalJSON accepts the names emitted by MarshalJSON.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "counter":
		*k = KindCounter
	case "gauge":
		*k = KindGauge
	case "histogram":
		*k = KindHistogram
	default:
		return fmt.Errorf("telemetry: unknown kind %q", name)
	}
	return nil
}

// HistogramData is the exported state of one histogram: Counts has
// len(Bounds)+1 entries, the last being the +Inf bucket.
type HistogramData struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Metric is one exported metric. Exactly one of Counter/Gauge/Hist is
// meaningful, selected by Kind.
type Metric struct {
	Subsystem string         `json:"subsystem"`
	Scope     string         `json:"scope,omitempty"`
	Name      string         `json:"name"`
	Kind      Kind           `json:"kind"`
	Counter   uint64         `json:"counter,omitempty"`
	Gauge     float64        `json:"gauge,omitempty"`
	Hist      *HistogramData `json:"histogram,omitempty"`
}

// Key returns the metric's registry key.
func (m Metric) Key() Key { return Key{m.Subsystem, m.Scope, m.Name} }

// scalar collapses a metric to one comparable number for diffing:
// counter value, gauge value, or histogram sample count.
func (m Metric) scalar() float64 {
	switch m.Kind {
	case KindCounter:
		return float64(m.Counter)
	case KindGauge:
		return m.Gauge
	case KindHistogram:
		if m.Hist != nil {
			return float64(m.Hist.Count)
		}
	}
	return 0
}

// Snapshot is an immutable capture of a registry at one sim time.
// Metrics are sorted by (subsystem, scope, name); Events are in
// emission order. Snapshots marshal to deterministic JSON: slices only,
// no maps.
type Snapshot struct {
	TimeNS        float64  `json:"time_ns"`
	Metrics       []Metric `json:"metrics"`
	Events        []Event  `json:"events"`
	EventsDropped uint64   `json:"events_dropped,omitempty"`
}

// Validate checks snapshot invariants: metrics sorted by key with no
// duplicates, histogram bucket counts consistent with their totals, and
// event sequence numbers strictly increasing. It is the schema check
// behind `iatstat -validate` and `make telemetry-smoke`.
func (s *Snapshot) Validate() error {
	if s == nil {
		return fmt.Errorf("telemetry: nil snapshot")
	}
	for i, m := range s.Metrics {
		if i > 0 {
			prev := s.Metrics[i-1].Key()
			if !keyLess(prev, m.Key()) {
				return fmt.Errorf("telemetry: metrics out of order at %d: %v !< %v", i, prev, m.Key())
			}
		}
		if m.Kind > KindHistogram {
			return fmt.Errorf("telemetry: metric %v has unknown kind %d", m.Key(), m.Kind)
		}
		if m.Kind == KindHistogram {
			h := m.Hist
			if h == nil {
				return fmt.Errorf("telemetry: histogram %v has no bucket data", m.Key())
			}
			if len(h.Counts) != len(h.Bounds)+1 {
				return fmt.Errorf("telemetry: histogram %v: %d bounds need %d counts, have %d",
					m.Key(), len(h.Bounds), len(h.Bounds)+1, len(h.Counts))
			}
			var total uint64
			for _, c := range h.Counts {
				total += c
			}
			if total != h.Count {
				return fmt.Errorf("telemetry: histogram %v: buckets sum to %d, count is %d",
					m.Key(), total, h.Count)
			}
			for i := 1; i < len(h.Bounds); i++ {
				if h.Bounds[i] <= h.Bounds[i-1] {
					return fmt.Errorf("telemetry: histogram %v: bounds not ascending at %d", m.Key(), i)
				}
			}
		}
	}
	var lastSeq uint64
	for _, ev := range s.Events {
		if ev.Seq <= lastSeq {
			return fmt.Errorf("telemetry: event seq %d not increasing (prev %d)", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	return nil
}

// Delta is one row of a snapshot comparison.
type Delta struct {
	Key    Key
	Kind   Kind
	Before float64 // counter/histogram-count as float64, gauge verbatim
	After  float64
}

// Diff returns per-metric deltas between two snapshots, sorted by key.
// Metrics present in only one snapshot contribute a zero on the missing
// side, so a diff against an empty (or nil) snapshot is the snapshot
// itself. Histograms compare by sample count.
func Diff(before, after *Snapshot) []Delta {
	vals := map[Key][2]float64{}
	kinds := map[Key]Kind{}
	if before != nil {
		for _, m := range before.Metrics {
			vals[m.Key()] = [2]float64{m.scalar(), 0}
			kinds[m.Key()] = m.Kind
		}
	}
	if after != nil {
		for _, m := range after.Metrics {
			v := vals[m.Key()]
			v[1] = m.scalar()
			vals[m.Key()] = v
			kinds[m.Key()] = m.Kind
		}
	}
	keys := make([]Key, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	out := make([]Delta, 0, len(keys))
	for _, k := range keys {
		v := vals[k]
		out = append(out, Delta{Key: k, Kind: kinds[k], Before: v[0], After: v[1]})
	}
	return out
}
