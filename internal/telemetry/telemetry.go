// Package telemetry is the simulator's measurement plane: a typed
// metrics registry (counters, gauges, fixed-bucket histograms keyed by
// subsystem/scope/name), a bounded structured-event ring stamped with
// sim time only, snapshots with stable ordering, exporters (CSV, JSON,
// Chrome trace_event), and snapshot diffing.
//
// The package is built for two call sites with very different budgets:
//
//   - Hot simulation paths (cache.Access, mem.Read, nic.DeliverRx) hold
//     *Counter/*Gauge/*Histogram handles resolved once at attach time.
//     Every handle method is nil-receiver-safe, so an uninstrumented
//     run costs exactly one predictable branch per metric touch and
//     zero allocations (asserted by testing.AllocsPerRun in
//     internal/cache).
//   - Cold paths (experiment runners, cmd/iatd) talk to the Registry
//     through the Sink interface to create handles, emit events, and
//     cut Snapshots.
//
// Everything here is deterministic: no wall clock, no global rand, no
// goroutines (detlint-enforced), and every export iterates sorted keys
// (maporder-enforced), so same-seed runs produce byte-identical
// snapshot files at any worker count.
package telemetry

import "sort"

// Kind discriminates metric types in snapshots and exports.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Key identifies a metric: which model (subsystem), which instance or
// tenant/CLOS within it (scope, may be empty), and what is measured
// (name).
type Key struct {
	Subsystem string
	Scope     string
	Name      string
}

func keyLess(a, b Key) bool {
	if a.Subsystem != b.Subsystem {
		return a.Subsystem < b.Subsystem
	}
	if a.Scope != b.Scope {
		return a.Scope < b.Scope
	}
	return a.Name < b.Name
}

// Counter is a monotonically increasing uint64. The zero handle (nil)
// is valid and free: every method no-ops.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins float64. The nil handle no-ops.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the current value by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the last value set (0 for a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: bounds are upper-inclusive
// bucket edges, with an implicit +Inf bucket after the last bound. The
// nil handle no-ops.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the +Inf bucket
	count  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of samples observed (0 for a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the running sum of samples (0 for a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Sink is what instrumented components see. Components must tolerate a
// nil Sink (skip attach) and, because *Registry's methods are themselves
// nil-receiver-safe, a typed-nil Sink degrades to nil handles rather
// than panicking.
type Sink interface {
	// Counter/Gauge/Histogram return the handle for a key, creating
	// it on first use. Histogram bounds are fixed by the first caller.
	Counter(subsystem, scope, name string) *Counter
	Gauge(subsystem, scope, name string) *Gauge
	Histogram(subsystem, scope, name string, bounds []float64) *Histogram
	// Emit appends a structured event to the ring (see Event). The
	// caller stamps sim time; the sink assigns the sequence number.
	Emit(ev Event)
}

// DefaultEventCapacity bounds the event ring of a Registry built by
// NewRegistry. Oldest events are overwritten once full (Dropped counts
// them), keeping memory constant over arbitrarily long runs.
const DefaultEventCapacity = 4096

// Registry is the concrete Sink. It is not safe for concurrent use —
// the simulator is single-threaded by design, and the harness gives
// each parallel job its own Registry.
type Registry struct {
	metrics map[Key]*metric
	ring    ring
}

type metric struct {
	kind Kind
	c    Counter
	g    Gauge
	h    Histogram
}

// NewRegistry returns an empty registry with DefaultEventCapacity.
func NewRegistry() *Registry { return NewRegistrySized(DefaultEventCapacity) }

// NewRegistrySized returns an empty registry whose event ring holds up
// to events entries (events <= 0 disables event capture entirely).
func NewRegistrySized(events int) *Registry {
	return &Registry{
		metrics: make(map[Key]*metric),
		ring:    newRing(events),
	}
}

// get returns the metric for k, creating it with kind on first use. A
// key re-registered under a different kind returns nil handles rather
// than corrupting the first registrant's data.
func (r *Registry) get(k Key, kind Kind) *metric {
	m, ok := r.metrics[k]
	if !ok {
		m = &metric{kind: kind}
		r.metrics[k] = m
	}
	if m.kind != kind {
		return nil
	}
	return m
}

// Counter implements Sink. Nil-receiver-safe: returns a nil handle.
func (r *Registry) Counter(subsystem, scope, name string) *Counter {
	if r == nil {
		return nil
	}
	m := r.get(Key{subsystem, scope, name}, KindCounter)
	if m == nil {
		return nil
	}
	return &m.c
}

// Gauge implements Sink. Nil-receiver-safe: returns a nil handle.
func (r *Registry) Gauge(subsystem, scope, name string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.get(Key{subsystem, scope, name}, KindGauge)
	if m == nil {
		return nil
	}
	return &m.g
}

// Histogram implements Sink. Bounds must be sorted ascending; they are
// copied and fixed by the first registration of the key. Nil-receiver-
// safe: returns a nil handle.
func (r *Registry) Histogram(subsystem, scope, name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.get(Key{subsystem, scope, name}, KindHistogram)
	if m == nil {
		return nil
	}
	if m.h.counts == nil {
		m.h.bounds = append([]float64(nil), bounds...)
		m.h.counts = make([]uint64, len(bounds)+1)
	}
	return &m.h
}

// Emit implements Sink: appends ev to the ring, stamping its sequence
// number. Nil-receiver-safe.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	r.ring.push(ev)
}

// Events returns the ring contents in emission order, filtered by
// minimum severity and (if non-empty) subsystem.
func (r *Registry) Events(minSev Severity, subsystem string) []Event {
	if r == nil {
		return nil
	}
	return r.ring.events(minSev, subsystem)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (r *Registry) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.ring.dropped
}

// Snapshot captures every metric and the full event ring at sim time
// timeNS. Metrics are sorted by (subsystem, scope, name); histogram
// state is deep-copied, so the snapshot is immutable even if the
// registry keeps accumulating.
func (r *Registry) Snapshot(timeNS float64) *Snapshot {
	if r == nil {
		return nil
	}
	keys := make([]Key, 0, len(r.metrics))
	for k := range r.metrics {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	s := &Snapshot{
		TimeNS:        timeNS,
		Metrics:       make([]Metric, 0, len(keys)),
		Events:        r.ring.events(SevDebug, ""),
		EventsDropped: r.ring.dropped,
	}
	for _, k := range keys {
		m := r.metrics[k]
		sm := Metric{Subsystem: k.Subsystem, Scope: k.Scope, Name: k.Name, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			sm.Counter = m.c.v
		case KindGauge:
			sm.Gauge = m.g.v
		case KindHistogram:
			sm.Hist = &HistogramData{
				Bounds: append([]float64(nil), m.h.bounds...),
				Counts: append([]uint64(nil), m.h.counts...),
				Count:  m.h.count,
				Sum:    m.h.sum,
			}
		}
		s.Metrics = append(s.Metrics, sm)
	}
	return s
}
