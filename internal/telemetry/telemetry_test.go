package telemetry

import (
	"testing"
)

func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	if r.Counter("a", "", "b") != nil {
		t.Fatal("nil registry must hand out nil counter handles")
	}
	if r.Gauge("a", "", "b") != nil || r.Histogram("a", "", "b", nil) != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.Emit(Event{Name: "x"})
	if r.Events(SevDebug, "") != nil || r.Dropped() != 0 || r.Snapshot(0) != nil {
		t.Fatal("nil registry must be fully inert")
	}
}

// A typed-nil *Registry stored in the Sink interface must behave like a
// nil sink rather than panic — components store Sink, not *Registry.
func TestTypedNilSink(t *testing.T) {
	var s Sink = (*Registry)(nil)
	c := s.Counter("cache", "slice0", "hits")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("typed-nil sink must degrade to nil handles")
	}
	s.Emit(Event{Name: "x"})
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache", "slice0", "hits")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("cache", "slice0", "hits") != c {
		t.Fatal("same key must return the same handle")
	}

	g := r.Gauge("nic", "vf0", "occ")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %g, want 4", g.Value())
	}

	h := r.Histogram("mem", "", "lat", []float64{10, 20})
	for _, v := range []float64{5, 15, 25, 10} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 55 {
		t.Fatalf("histogram count=%d sum=%g, want 4/55", h.Count(), h.Sum())
	}
	snap := r.Snapshot(0)
	var hist *HistogramData
	for _, m := range snap.Metrics {
		if m.Kind == KindHistogram {
			hist = m.Hist
		}
	}
	// 5 and 10 land in le:10 (upper-inclusive), 15 in le:20, 25 in +Inf.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if hist.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hist.Counts[i], w, hist.Counts)
		}
	}
}

// Re-registering a key under a different kind must not corrupt the first
// registrant; the mismatched caller gets an inert nil handle.
func TestKindMismatchReturnsNilHandle(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache", "", "hits")
	c.Add(9)
	g := r.Gauge("cache", "", "hits")
	if g != nil {
		t.Fatal("kind mismatch must return a nil handle")
	}
	g.Set(123) // must no-op
	if c.Value() != 9 {
		t.Fatalf("counter corrupted by kind mismatch: %d", c.Value())
	}
}

func TestHistogramBoundsFixedByFirstRegistration(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("mem", "", "lat", []float64{10})
	h2 := r.Histogram("mem", "", "lat", []float64{99, 100, 101})
	if h1 != h2 {
		t.Fatal("same key must return the same histogram")
	}
	h1.Observe(50)
	snap := r.Snapshot(0)
	h := snap.Metrics[0].Hist
	if len(h.Bounds) != 1 || h.Bounds[0] != 10 {
		t.Fatalf("bounds = %v, want the first registration's [10]", h.Bounds)
	}
}

func TestRingOverflowAndFiltering(t *testing.T) {
	r := NewRegistrySized(3)
	for i := 0; i < 5; i++ {
		sev := SevDebug
		if i%2 == 1 {
			sev = SevInfo
		}
		r.Emit(Event{TimeNS: float64(i), Sev: sev, Subsystem: "daemon", Name: "ev"})
	}
	evs := r.Events(SevDebug, "")
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	// Oldest two (seq 1, 2) were overwritten.
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("ring kept seqs %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	if got := r.Events(SevInfo, ""); len(got) != 1 || got[0].Sev != SevInfo {
		t.Fatalf("severity filter returned %v", got)
	}
	if got := r.Events(SevDebug, "nic"); len(got) != 0 {
		t.Fatalf("subsystem filter returned %v", got)
	}
	if got := r.Events(SevDebug, "daemon"); len(got) != 3 {
		t.Fatalf("subsystem match returned %d events, want 3", len(got))
	}
}

func TestZeroCapacityRingDisablesCapture(t *testing.T) {
	r := NewRegistrySized(0)
	r.Emit(Event{Name: "x"})
	if len(r.Events(SevDebug, "")) != 0 || r.Dropped() != 1 {
		t.Fatal("zero-capacity ring must drop everything while counting")
	}
}

func TestSnapshotSortedAndValid(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of key order.
	r.Counter("nic", "vf1", "rx").Inc()
	r.Counter("cache", "slice1", "hits").Add(2)
	r.Counter("cache", "slice0", "hits").Add(1)
	r.Gauge("cache", "slice0", "dirty").Set(4)
	r.Emit(Event{TimeNS: 1, Sev: SevInfo, Subsystem: "daemon", Name: "state"})

	s := r.Snapshot(42e9)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	wantKeys := []Key{
		{"cache", "slice0", "dirty"},
		{"cache", "slice0", "hits"},
		{"cache", "slice1", "hits"},
		{"nic", "vf1", "rx"},
	}
	for i, w := range wantKeys {
		if s.Metrics[i].Key() != w {
			t.Fatalf("metric %d = %v, want %v", i, s.Metrics[i].Key(), w)
		}
	}
	if s.TimeNS != 42e9 || len(s.Events) != 1 {
		t.Fatalf("snapshot time/events wrong: %+v", s)
	}
}

// A snapshot must stay immutable after the registry keeps accumulating.
func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mem", "", "lat", []float64{10})
	h.Observe(5)
	s := r.Snapshot(0)
	h.Observe(5)
	h.Observe(500)
	if s.Metrics[0].Hist.Count != 1 || s.Metrics[0].Hist.Counts[0] != 1 {
		t.Fatal("snapshot histogram mutated by later observations")
	}
}

func TestDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cache", "", "hits")
	g := r.Gauge("nic", "vf0", "occ")
	h := r.Histogram("mem", "", "lat", []float64{10})
	c.Add(3)
	g.Set(1)
	h.Observe(5)
	before := r.Snapshot(1e9)

	c.Add(4)
	g.Set(9)
	h.Observe(7)
	h.Observe(8)
	r.Counter("ddio", "", "drops").Add(2) // appears only in after
	after := r.Snapshot(2e9)

	ds := Diff(before, after)
	want := []Delta{
		{Key{"cache", "", "hits"}, KindCounter, 3, 7},
		{Key{"ddio", "", "drops"}, KindCounter, 0, 2},
		{Key{"mem", "", "lat"}, KindHistogram, 1, 3},
		{Key{"nic", "vf0", "occ"}, KindGauge, 1, 9},
	}
	if len(ds) != len(want) {
		t.Fatalf("diff has %d rows, want %d: %+v", len(ds), len(want), ds)
	}
	for i, w := range want {
		if ds[i] != w {
			t.Fatalf("diff[%d] = %+v, want %+v", i, ds[i], w)
		}
	}

	// Diff against nil treats the missing side as zero.
	ds = Diff(nil, after)
	if len(ds) != 4 || ds[0].Before != 0 || ds[0].After != 7 {
		t.Fatalf("diff(nil, after) = %+v", ds)
	}
	if got := Diff(nil, nil); len(got) != 0 {
		t.Fatalf("diff(nil, nil) = %+v", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Snapshot {
		r := NewRegistry()
		r.Counter("b", "", "x").Inc()
		r.Counter("a", "", "x").Inc()
		r.Histogram("m", "", "h", []float64{1, 2}).Observe(1.5)
		r.Emit(Event{TimeNS: 1, Name: "e1"})
		r.Emit(Event{TimeNS: 2, Name: "e2"})
		return r.Snapshot(0)
	}

	s := mk()
	if err := s.Validate(); err != nil {
		t.Fatalf("healthy snapshot rejected: %v", err)
	}

	s = mk()
	s.Metrics[0], s.Metrics[1] = s.Metrics[1], s.Metrics[0]
	if s.Validate() == nil {
		t.Fatal("unsorted metrics accepted")
	}

	s = mk()
	for i := range s.Metrics {
		if s.Metrics[i].Kind == KindHistogram {
			s.Metrics[i].Hist.Count = 99
		}
	}
	if s.Validate() == nil {
		t.Fatal("inconsistent histogram count accepted")
	}

	s = mk()
	s.Events[1].Seq = s.Events[0].Seq
	if s.Validate() == nil {
		t.Fatal("non-increasing event seq accepted")
	}

	if (*Snapshot)(nil).Validate() == nil {
		t.Fatal("nil snapshot accepted")
	}
}
