// Package tenantfile parses the text tenant-description format the iatd
// daemon consumes — the reproduction's analogue of Sec. V's "we keep such
// affiliation records in a text file".
//
// Format (whitespace-separated columns, '#' comments, blank lines ignored):
//
//	# name   cores  ways  priority  io   workload
//	fwd0     0      2     pc        io   testpmd:1500
//	switch   1,2    2     stack     io   ovs
//	batch    3      2     be        -    xmem:8
//	job      4      2     pc        -    spec:mcf
//
// Columns:
//
//	name      tenant name (unique)
//	cores     comma-separated core list
//	ways      initial LLC way count (CAT allocation width)
//	priority  pc | be | stack
//	io        io | - (whether the workload is networking)
//	workload  testpmd[:pktsize] | xmem[:MB] | spec:<profile> | idle
package tenantfile

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Entry is one parsed tenant line.
type Entry struct {
	Name     string
	Cores    []int
	Ways     int
	Priority string // "pc", "be", "stack"
	IO       bool
	Workload string // e.g. "testpmd:1500", "xmem:8", "spec:mcf", "idle"
}

// Event is one timed phase-change directive, introduced by an '@' line:
//
//	@5s  batch  xmem-ws 16    # grow tenant "batch"'s working set to 16MB
//	@15s ddio   ways 4        # reprogram the DDIO register to 4 ways
//
// Events let a tenant file script the scenarios of the paper's Figs. 10/11
// (working-set phase changes, manual DDIO flips) without recompiling.
type Event struct {
	AtNS   float64
	Target string // tenant name, or "ddio"
	Action string // "xmem-ws" or "ways"
	Arg    int
}

// Parse reads entries from r, ignoring '@' event lines. Malformed lines
// produce an error naming the line number.
func Parse(r io.Reader) ([]Entry, error) {
	entries, _, err := ParseWithEvents(r)
	return entries, err
}

// ParseWithEvents reads both tenant entries and timed '@' events from r.
func ParseWithEvents(r io.Reader) ([]Entry, []Event, error) {
	var entries []Entry
	var events []Event
	names := map[string]bool{}
	usedCores := map[int]string{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if strings.HasPrefix(fields[0], "@") {
			ev, err := parseEvent(fields)
			if err != nil {
				return nil, nil, fmt.Errorf("tenantfile: line %d: %w", lineNo, err)
			}
			events = append(events, ev)
			continue
		}
		if len(fields) < 5 || len(fields) > 6 {
			return nil, nil, fmt.Errorf("tenantfile: line %d: want 5-6 columns, got %d", lineNo, len(fields))
		}
		e := Entry{Name: fields[0], Workload: "idle"}
		if names[e.Name] {
			return nil, nil, fmt.Errorf("tenantfile: line %d: duplicate tenant %q", lineNo, e.Name)
		}
		names[e.Name] = true
		for _, c := range strings.Split(fields[1], ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("tenantfile: line %d: bad core %q", lineNo, c)
			}
			if owner, taken := usedCores[n]; taken {
				return nil, nil, fmt.Errorf("tenantfile: line %d: core %d already assigned to %q", lineNo, n, owner)
			}
			usedCores[n] = e.Name
			e.Cores = append(e.Cores, n)
		}
		ways, err := strconv.Atoi(fields[2])
		if err != nil || ways < 1 {
			return nil, nil, fmt.Errorf("tenantfile: line %d: bad way count %q", lineNo, fields[2])
		}
		e.Ways = ways
		switch strings.ToLower(fields[3]) {
		case "pc", "be", "stack":
			e.Priority = strings.ToLower(fields[3])
		default:
			return nil, nil, fmt.Errorf("tenantfile: line %d: bad priority %q (want pc|be|stack)", lineNo, fields[3])
		}
		switch strings.ToLower(fields[4]) {
		case "io":
			e.IO = true
		case "-", "noio":
		default:
			return nil, nil, fmt.Errorf("tenantfile: line %d: bad io flag %q (want io|-)", lineNo, fields[4])
		}
		if len(fields) == 6 {
			e.Workload = fields[5]
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(entries) == 0 {
		return nil, nil, fmt.Errorf("tenantfile: no tenants defined")
	}
	// Events may only reference declared tenants (or "ddio").
	for _, ev := range events {
		if ev.Target != "ddio" && !names[ev.Target] {
			return nil, nil, fmt.Errorf("tenantfile: event at %.1fs references unknown tenant %q", ev.AtNS/1e9, ev.Target)
		}
	}
	return entries, events, nil
}

// parseEvent parses an '@' directive: "@<time>s <target> <action> <arg>".
func parseEvent(fields []string) (Event, error) {
	if len(fields) != 4 {
		return Event{}, fmt.Errorf("event wants 4 columns (@T target action arg), got %d", len(fields))
	}
	ts := strings.TrimPrefix(fields[0], "@")
	ts = strings.TrimSuffix(ts, "s")
	sec, err := strconv.ParseFloat(ts, 64)
	if err != nil || sec < 0 {
		return Event{}, fmt.Errorf("bad event time %q", fields[0])
	}
	arg, err := strconv.Atoi(fields[3])
	if err != nil || arg < 1 {
		return Event{}, fmt.Errorf("bad event argument %q", fields[3])
	}
	ev := Event{AtNS: sec * 1e9, Target: fields[1], Action: fields[2], Arg: arg}
	switch {
	case ev.Target == "ddio" && ev.Action == "ways":
	case ev.Target != "ddio" && ev.Action == "xmem-ws":
	default:
		return Event{}, fmt.Errorf("unknown event %q %q (want 'ddio ways N' or '<tenant> xmem-ws MB')", ev.Target, ev.Action)
	}
	return ev, nil
}

// WorkloadKind splits a workload spec into kind and argument ("xmem:8" ->
// "xmem", "8").
func WorkloadKind(spec string) (kind, arg string) {
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		return spec[:i], spec[i+1:]
	}
	return spec, ""
}
