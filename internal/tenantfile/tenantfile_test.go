package tenantfile

import (
	"strings"
	"testing"
)

const goodFile = `
# comment line
fwd0     0      2     pc        io   testpmd:1500
switch   1,2    2     stack     io   ovs
batch    3      2     be        -    xmem:8   # trailing comment
job      4      2     PC        -    spec:mcf
plain    5      1     be        -
`

func TestParseGoodFile(t *testing.T) {
	entries, err := Parse(strings.NewReader(goodFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("parsed %d entries", len(entries))
	}
	e := entries[0]
	if e.Name != "fwd0" || len(e.Cores) != 1 || e.Cores[0] != 0 || e.Ways != 2 ||
		e.Priority != "pc" || !e.IO || e.Workload != "testpmd:1500" {
		t.Fatalf("entry 0 = %+v", e)
	}
	if sw := entries[1]; len(sw.Cores) != 2 || sw.Cores[1] != 2 || sw.Priority != "stack" {
		t.Fatalf("entry 1 = %+v", sw)
	}
	if entries[3].Priority != "pc" {
		t.Fatal("priority should be case-insensitive")
	}
	if entries[4].Workload != "idle" {
		t.Fatalf("default workload = %q", entries[4].Workload)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"too few columns":  "a 0 2 pc\n",
		"too many columns": "a 0 2 pc io xmem extra\n",
		"bad core":         "a x 2 pc io\n",
		"negative core":    "a -1 2 pc io\n",
		"bad ways":         "a 0 zero pc io\n",
		"zero ways":        "a 0 0 pc io\n",
		"bad priority":     "a 0 2 urgent io\n",
		"bad io flag":      "a 0 2 pc maybe\n",
		"duplicate name":   "a 0 2 pc io\na 1 2 pc io\n",
		"duplicate core":   "a 0 2 pc io\nb 0 2 pc io\n",
		"empty file":       "# nothing here\n",
	}
	for name, input := range cases {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestParseErrorNamesLine(t *testing.T) {
	_, err := Parse(strings.NewReader("ok 0 2 pc io\nbroken 1 2\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v should name line 2", err)
	}
}

func TestWorkloadKind(t *testing.T) {
	if k, a := WorkloadKind("xmem:8"); k != "xmem" || a != "8" {
		t.Fatalf("got %q %q", k, a)
	}
	if k, a := WorkloadKind("idle"); k != "idle" || a != "" {
		t.Fatalf("got %q %q", k, a)
	}
	if k, a := WorkloadKind("spec:mcf"); k != "spec" || a != "mcf" {
		t.Fatalf("got %q %q", k, a)
	}
}

func TestParseWithEvents(t *testing.T) {
	input := `
fwd    0  3  pc  io  testpmd:1500
job    4  2  pc  -   xmem:2
@3s   job   xmem-ws  10
@7.5s ddio  ways     4
`
	entries, events, err := ParseWithEvents(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || len(events) != 2 {
		t.Fatalf("entries=%d events=%d", len(entries), len(events))
	}
	if events[0] != (Event{AtNS: 3e9, Target: "job", Action: "xmem-ws", Arg: 10}) {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].AtNS != 7.5e9 || events[1].Target != "ddio" || events[1].Arg != 4 {
		t.Fatalf("event 1 = %+v", events[1])
	}
	// Plain Parse ignores events.
	plain, err := Parse(strings.NewReader(input))
	if err != nil || len(plain) != 2 {
		t.Fatalf("Parse: %d entries, err=%v", len(plain), err)
	}
}

func TestParseEventErrors(t *testing.T) {
	base := "a 0 2 pc io\n"
	cases := map[string]string{
		"wrong columns":   base + "@3s job xmem-ws\n",
		"bad time":        base + "@banana job xmem-ws 10\n",
		"negative arg":    base + "@3s job xmem-ws 0\n",
		"unknown action":  base + "@3s job reboot 1\n",
		"unknown tenant":  base + "@3s ghost xmem-ws 10\n",
		"ddio bad action": base + "@3s ddio xmem-ws 10\n",
	}
	for name, input := range cases {
		if _, _, err := ParseWithEvents(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}
