package tgen_test

import (
	"fmt"

	"iatsim/internal/tgen"
)

// ExampleLineRatePPS reproduces the paper's introductory arithmetic: 100Gb
// of 64B packets (plus 20B of Ethernet overhead each) is 148.8Mpps.
func ExampleLineRatePPS() {
	fmt.Printf("%.1f Mpps\n", tgen.LineRatePPS(100, 64)/1e6)
	// Output:
	// 148.8 Mpps
}

// ExampleRFC2544Search finds the zero-drop capacity of a synthetic device
// that starts dropping above 7.5Mpps.
func ExampleRFC2544Search() {
	trial := func(rate float64) (drops uint64, delivered float64) {
		if rate > 7.5e6 {
			return uint64(rate - 7.5e6), 7.5e6
		}
		return 0, rate
	}
	res := tgen.RFC2544Search(59.5e6, 0.01, trial)
	fmt.Printf("%.1f Mpps in %d trials\n", res.MaxRatePPS/1e6, res.Trials)
	// Output:
	// 7.4 Mpps in 8 trials
}
