// Package tgen provides the traffic generator machinery: constant-rate and
// bursty packet sources, line-rate helpers, and the RFC 2544 zero-drop
// maximum-throughput search the paper's Fig. 3 uses.
package tgen

import (
	"math/rand"

	"iatsim/internal/pkt"
)

// LineRatePPS returns the packet rate of a fully loaded Ethernet link of
// gbps for the given frame size, accounting for the 20B per-frame overhead
// (preamble + IFG) the paper's 148.8Mpps example uses.
func LineRatePPS(gbps float64, frameSize int) float64 {
	return gbps * 1e9 / 8 / float64(frameSize+20)
}

// Generator produces packets of one traffic profile at a configurable rate.
// It is deterministic given its seed.
type Generator struct {
	// RatePPS is the offered load in packets per second (unscaled; the
	// platform divides by its Scale).
	RatePPS float64
	// Size is the frame size in bytes.
	Size int
	// Flows is the flow universe packets are drawn from.
	Flows *pkt.FlowSet
	// Burst optionally modulates the rate with an on/off pattern:
	// during "off" phases no packets are emitted, during "on" phases the
	// rate is scaled so the average remains RatePPS. Nil means constant
	// rate.
	Burst *Burst
	// NewApp, when set, attaches application payload to each packet
	// (e.g. YCSB requests for the KVS experiments).
	NewApp func(rng *rand.Rand) any
	// SizeFor, when set together with NewApp, derives the wire size from
	// the application payload (e.g. a KV update carries its value).
	SizeFor func(app any) int
	// Window, when positive, makes the generator closed-loop with that
	// many outstanding requests (a YCSB client with Window threads):
	// arrivals stall once Window requests are in flight until Complete
	// returns credits. 0 keeps the generator open-loop.
	Window int

	rng         *rand.Rand
	acc         float64
	outstanding int
}

// Burst is an on/off (telegraph) rate modulator with the given period and
// duty cycle.
type Burst struct {
	PeriodNS float64 // full on+off cycle length
	Duty     float64 // fraction of the period that is "on" (0,1]
}

// NewGenerator builds a generator; seed fixes the flow-pick sequence.
func NewGenerator(ratePPS float64, size int, flows *pkt.FlowSet, seed int64) *Generator {
	return &Generator{
		RatePPS: ratePPS,
		Size:    size,
		Flows:   flows,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Arrivals returns how many packets arrive in the window [nowNS,
// nowNS+dtNS) at the generator's (possibly burst-modulated) rate, carrying
// fractional packets across calls so long-run averages are exact. Burst
// on/off boundaries are integrated exactly, so windows shorter or longer
// than the burst phase both work.
func (g *Generator) Arrivals(nowNS, dtNS float64) int {
	var pkts float64
	if g.Burst == nil || g.Burst.PeriodNS <= 0 || g.Burst.Duty >= 1 {
		pkts = g.RatePPS * dtNS / 1e9
	} else {
		// Fraction of [nowNS, nowNS+dtNS) overlapping "on" phases.
		on := g.onTime(nowNS, nowNS+dtNS)
		pkts = g.RatePPS / g.Burst.Duty * on / 1e9
	}
	g.acc += pkts
	n := int(g.acc)
	g.acc -= float64(n)
	if g.Window > 0 {
		if free := g.Window - g.outstanding; n > free {
			g.acc = 0 // closed loop: no arrival backlog accrues
			n = free
		}
		g.outstanding += n
	}
	return n
}

// Complete returns one credit to a closed-loop generator (a response
// reached the client, or the request was dropped and the client timed out).
// No-op for open-loop generators.
func (g *Generator) Complete() {
	if g.Window > 0 && g.outstanding > 0 {
		g.outstanding--
	}
}

// Outstanding returns the in-flight request count of a closed-loop
// generator.
func (g *Generator) Outstanding() int { return g.outstanding }

// onTime returns how much of [a, b) overlaps the burst's on-phases.
func (g *Generator) onTime(a, b float64) float64 {
	p := g.Burst.PeriodNS
	onLen := p * g.Burst.Duty
	var total float64
	// Walk the periods overlapping [a, b).
	start := float64(int64(a/p)) * p
	for t := start; t < b; t += p {
		lo := t
		hi := t + onLen
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}

// Next produces the next packet.
func (g *Generator) Next() pkt.Packet {
	p := pkt.Packet{Flow: g.Flows.Pick(g.rng), Size: g.Size}
	if g.NewApp != nil {
		p.App = g.NewApp(g.rng)
		if g.SizeFor != nil {
			p.Size = g.SizeFor(p.App)
		}
	}
	return p
}

// Reset clears accumulated fractional arrivals (between RFC2544 trials).
func (g *Generator) Reset(seed int64) {
	g.acc = 0
	g.rng = rand.New(rand.NewSource(seed))
}

// TrialFunc runs one RFC 2544 trial at the given offered rate (packets per
// second) and reports the observed drop count and the delivered throughput
// in packets per second.
type TrialFunc func(ratePPS float64) (drops uint64, deliveredPPS float64)

// RFC2544Result is the outcome of a zero-drop throughput search.
type RFC2544Result struct {
	// MaxRatePPS is the highest offered rate that completed with zero
	// drops.
	MaxRatePPS float64
	// Trials is the number of trials executed.
	Trials int
}

// RFC2544Search performs the benchmark's binary search for the maximum
// zero-drop rate in [0, maxPPS], stopping when the search interval is
// within tol (a fraction of maxPPS, e.g. 0.01 for 1%).
func RFC2544Search(maxPPS, tol float64, trial TrialFunc) RFC2544Result {
	lo, hi := 0.0, maxPPS
	res := RFC2544Result{}
	// First probe at line rate: if it passes, we are done.
	if d, _ := trial(maxPPS); d == 0 {
		return RFC2544Result{MaxRatePPS: maxPPS, Trials: 1}
	}
	res.Trials = 1
	for hi-lo > tol*maxPPS {
		mid := (lo + hi) / 2
		drops, _ := trial(mid)
		res.Trials++
		if drops == 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.MaxRatePPS = lo
	return res
}
