package tgen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"iatsim/internal/pkt"
)

func TestLineRatePPS(t *testing.T) {
	// The paper's example: 100Gb at 64B (+20B overhead) = 148.8Mpps.
	if got := LineRatePPS(100, 64); math.Abs(got-148.8e6) > 0.1e6 {
		t.Fatalf("100G/64B = %.2fMpps, want ~148.8", got/1e6)
	}
	// 40Gb at 1500B ~ 3.29Mpps.
	if got := LineRatePPS(40, 1500); math.Abs(got-3.29e6) > 0.01e6 {
		t.Fatalf("40G/1500B = %.2fMpps", got/1e6)
	}
}

func TestArrivalsExactLongRun(t *testing.T) {
	g := NewGenerator(1e6, 64, pkt.NewFlowSet(4, 0, 1), 1)
	total := 0
	now := 0.0
	const dt = 50e3 // 50us windows
	for i := 0; i < 20000; i++ {
		total += g.Arrivals(now, dt)
		now += dt
	}
	want := 1e6 * now / 1e9
	if math.Abs(float64(total)-want) > 1 {
		t.Fatalf("arrivals = %d, want %.0f", total, want)
	}
}

func TestArrivalsFractionalCarry(t *testing.T) {
	g := NewGenerator(1000, 64, pkt.NewFlowSet(1, 0, 1), 1)
	// 0.1 packets per window: exactly one arrival every 10 windows.
	count := 0
	for i := 0; i < 1000; i++ {
		count += g.Arrivals(float64(i)*100e3, 100e3)
	}
	// 0.1/window x 1000 windows = 100, within float accumulation error.
	if count < 99 || count > 100 {
		t.Fatalf("arrivals = %d, want ~100", count)
	}
}

func TestBurstPreservesAverage(t *testing.T) {
	g := NewGenerator(1e6, 64, pkt.NewFlowSet(4, 0, 1), 1)
	g.Burst = &Burst{PeriodNS: 1e6, Duty: 0.25}
	total := 0
	now := 0.0
	const dt = 37e3 // deliberately not a divisor of the period
	for now < 1e9 {
		total += g.Arrivals(now, dt)
		now += dt
	}
	want := 1e6 * now / 1e9
	if math.Abs(float64(total)-want)/want > 0.01 {
		t.Fatalf("bursty arrivals = %d, want ~%.0f", total, want)
	}
}

func TestBurstConcentratesInOnPhase(t *testing.T) {
	g := NewGenerator(1e6, 64, pkt.NewFlowSet(4, 0, 1), 1)
	g.Burst = &Burst{PeriodNS: 1e6, Duty: 0.5}
	on := g.Arrivals(0, 0.5e6)      // first half: on
	off := g.Arrivals(0.5e6, 0.5e6) // second half: off
	if off != 0 {
		t.Fatalf("off-phase arrivals = %d", off)
	}
	if on == 0 {
		t.Fatal("on-phase has no arrivals")
	}
}

func TestNextRespectsSizeAndFlows(t *testing.T) {
	fs := pkt.NewFlowSet(4, 9, 1)
	g := NewGenerator(1e6, 777, fs, 1)
	for i := 0; i < 50; i++ {
		p := g.Next()
		if p.Size != 777 {
			t.Fatalf("size = %d", p.Size)
		}
		if p.Flow.VLAN != 9 {
			t.Fatalf("vlan = %d", p.Flow.VLAN)
		}
	}
}

func TestSizeForHook(t *testing.T) {
	g := NewGenerator(1e6, 100, pkt.NewFlowSet(1, 0, 1), 1)
	g.NewApp = func(_ *rand.Rand) any { return 17 }
	g.SizeFor = func(app any) int { return app.(int) * 10 }
	if p := g.Next(); p.Size != 170 || p.App.(int) != 17 {
		t.Fatalf("packet = %+v", p)
	}
}

func TestReset(t *testing.T) {
	fs := pkt.NewFlowSet(64, 0, 1)
	g1 := NewGenerator(1e6, 64, fs, 7)
	g2 := NewGenerator(1e6, 64, fs, 7)
	for i := 0; i < 10; i++ {
		g1.Next()
	}
	g1.Arrivals(0, 12345)
	g1.Reset(7)
	for i := 0; i < 10; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Flow != b.Flow {
			t.Fatalf("packet %d differs after reset", i)
		}
	}
}

func TestRFC2544SearchFindsCapacity(t *testing.T) {
	const capacity = 7.3e6
	trial := func(rate float64) (uint64, float64) {
		if rate > capacity {
			return uint64(rate - capacity), capacity
		}
		return 0, rate
	}
	res := RFC2544Search(59.5e6, 0.01, trial)
	if math.Abs(res.MaxRatePPS-capacity) > 0.01*59.5e6 {
		t.Fatalf("search found %.2fMpps, want ~%.2f", res.MaxRatePPS/1e6, capacity/1e6)
	}
	if res.Trials < 5 {
		t.Fatalf("suspiciously few trials: %d", res.Trials)
	}
}

func TestRFC2544LineRatePassesImmediately(t *testing.T) {
	trial := func(rate float64) (uint64, float64) { return 0, rate }
	res := RFC2544Search(10e6, 0.01, trial)
	if res.MaxRatePPS != 10e6 || res.Trials != 1 {
		t.Fatalf("result = %+v", res)
	}
}

// Property: the search result never exceeds the capacity of a synthetic
// threshold device and converges within tolerance.
func TestRFC2544Property(t *testing.T) {
	f := func(capFrac uint8) bool {
		capacity := 1e6 * (0.05 + float64(capFrac%100)/110)
		trial := func(rate float64) (uint64, float64) {
			if rate > capacity {
				return 1, capacity
			}
			return 0, rate
		}
		res := RFC2544Search(1e6, 0.01, trial)
		return res.MaxRatePPS <= capacity && capacity-res.MaxRatePPS <= 0.02e6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
