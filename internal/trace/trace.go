// Package trace renders the daemon's telemetry event stream as CSV time
// series — notably the Fig. 11 allocation timeline cmd/experiments
// regenerates — so any external tool can plot a run.
//
// The writer is a thin renderer: the daemon publishes one "iteration"
// event per control-loop pass on its telemetry sink (core.Daemon.Tel),
// with the full core.IterationInfo as the event payload, and this
// package formats those payloads. Record remains usable directly as the
// daemon's OnIteration callback for streaming runs whose event volume
// exceeds any bounded ring.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"iatsim/internal/core"
	"iatsim/internal/telemetry"
)

// Writer streams IAT iteration records as CSV. The CLOS column set is
// fixed by the first record (ascending CLOS ids); the header is derived
// from it rather than tracked as separate state.
type Writer struct {
	csv  *csv.Writer
	clos []int // CLOS column order; nil until the header row is written
}

// NewWriter wraps w. Flush must be called to drain buffered rows.
func NewWriter(w io.Writer) *Writer {
	return &Writer{csv: csv.NewWriter(w)}
}

// header emits the column row, fixing the CLOS column order from the
// first record.
func (t *Writer) header(info core.IterationInfo) error {
	cols := []string{"time_s", "state", "stable", "action", "ddio_ways", "ddio_mask", "ddio_hit_ps", "ddio_miss_ps"}
	clos := make([]int, 0, len(info.Masks))
	for c := range info.Masks {
		clos = append(clos, c)
	}
	sort.Ints(clos)
	t.clos = clos
	for _, clos := range t.clos {
		cols = append(cols, fmt.Sprintf("clos%d_mask", clos))
	}
	return t.csv.Write(cols)
}

// Record appends one iteration. Safe to use as a core.Daemon OnIteration
// callback via t.Hook().
func (t *Writer) Record(info core.IterationInfo) error {
	if t.clos == nil {
		if err := t.header(info); err != nil {
			return err
		}
	}
	row := []string{
		strconv.FormatFloat(info.NowNS/1e9, 'f', 3, 64),
		info.State.String(),
		strconv.FormatBool(info.Stable),
		info.Action,
		strconv.Itoa(info.DDIOWays),
		info.DDIOMask.String(),
		strconv.FormatFloat(info.DDIOHitPS, 'e', 3, 64),
		strconv.FormatFloat(info.DDIOMissPS, 'e', 3, 64),
	}
	for _, clos := range t.clos {
		row = append(row, info.Masks[clos].String())
	}
	return t.csv.Write(row)
}

// RecordEvent renders one telemetry event: daemon "iteration" events
// (whose payload is a core.IterationInfo) become CSV rows; everything
// else — other subsystems, state transitions, mask writes — is not part
// of this time series and is skipped.
func (t *Writer) RecordEvent(ev telemetry.Event) error {
	info, ok := ev.Data.(core.IterationInfo)
	if !ok {
		return nil
	}
	return t.Record(info)
}

// RenderEvents replays an event stream (e.g. a snapshot's ring) through
// a fresh writer and flushes it — the offline path for re-deriving the
// Fig. 11 CSV from captured telemetry.
func RenderEvents(w io.Writer, evs []telemetry.Event) error {
	t := NewWriter(w)
	for _, ev := range evs {
		if err := t.RecordEvent(ev); err != nil {
			return err
		}
	}
	return t.Flush()
}

// Hook adapts the writer to the daemon's OnIteration callback, swallowing
// write errors (tracing must never perturb the control loop).
func (t *Writer) Hook() func(core.IterationInfo) {
	return func(info core.IterationInfo) { _ = t.Record(info) }
}

// Flush drains buffered rows to the underlying writer.
func (t *Writer) Flush() error {
	t.csv.Flush()
	return t.csv.Error()
}
