// Package trace exports controller and experiment time series as CSV, so
// the figures cmd/experiments regenerates (notably the Fig. 11 allocation
// timeline) can be plotted with any external tool.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"iatsim/internal/core"
)

// Writer streams IAT iteration records as CSV.
type Writer struct {
	csv      *csv.Writer
	wroteHdr bool
	closMap  []int // stable column order for per-CLOS masks
}

// NewWriter wraps w. Close (Flush) must be called to drain buffered rows.
func NewWriter(w io.Writer) *Writer {
	return &Writer{csv: csv.NewWriter(w)}
}

// header emits the column row, fixing the CLOS column order from the first
// record.
func (t *Writer) header(info core.IterationInfo) error {
	cols := []string{"time_s", "state", "stable", "action", "ddio_ways", "ddio_mask", "ddio_hit_ps", "ddio_miss_ps"}
	t.closMap = t.closMap[:0]
	for clos := 0; clos < 64; clos++ {
		if _, ok := info.Masks[clos]; ok {
			t.closMap = append(t.closMap, clos)
			cols = append(cols, fmt.Sprintf("clos%d_mask", clos))
		}
	}
	t.wroteHdr = true
	return t.csv.Write(cols)
}

// Record appends one iteration. Safe to use as a core.Daemon OnIteration
// callback via t.Hook().
func (t *Writer) Record(info core.IterationInfo) error {
	if !t.wroteHdr {
		if err := t.header(info); err != nil {
			return err
		}
	}
	row := []string{
		strconv.FormatFloat(info.NowNS/1e9, 'f', 3, 64),
		info.State.String(),
		strconv.FormatBool(info.Stable),
		info.Action,
		strconv.Itoa(info.DDIOWays),
		info.DDIOMask.String(),
		strconv.FormatFloat(info.DDIOHitPS, 'e', 3, 64),
		strconv.FormatFloat(info.DDIOMissPS, 'e', 3, 64),
	}
	for _, clos := range t.closMap {
		row = append(row, info.Masks[clos].String())
	}
	return t.csv.Write(row)
}

// Hook adapts the writer to the daemon's OnIteration callback, swallowing
// write errors (tracing must never perturb the control loop).
func (t *Writer) Hook() func(core.IterationInfo) {
	return func(info core.IterationInfo) { _ = t.Record(info) }
}

// Flush drains buffered rows to the underlying writer.
func (t *Writer) Flush() error {
	t.csv.Flush()
	return t.csv.Error()
}
