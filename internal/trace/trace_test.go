package trace

import (
	"encoding/csv"
	"strings"
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/core"
	"iatsim/internal/telemetry"
)

func sampleInfo(t float64, state core.State) core.IterationInfo {
	return core.IterationInfo{
		NowNS:    t,
		State:    state,
		Stable:   state == core.LowKeep,
		Action:   "test",
		DDIOWays: 2,
		DDIOMask: cache.ContiguousMask(9, 2),
		Masks: map[int]cache.WayMask{
			1: cache.ContiguousMask(0, 3),
			4: cache.ContiguousMask(3, 2),
		},
		DDIOHitPS:  1e6,
		DDIOMissPS: 5e3,
	}
}

func TestWriterEmitsHeaderAndRows(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.Record(sampleInfo(1e9, core.LowKeep)); err != nil {
		t.Fatal(err)
	}
	if err := w.Record(sampleInfo(2e9, core.IODemand)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hdr := strings.Join(rows[0], ",")
	if !strings.Contains(hdr, "clos1_mask") || !strings.Contains(hdr, "clos4_mask") {
		t.Fatalf("header missing CLOS columns: %s", hdr)
	}
	if rows[1][0] != "1.000" || rows[2][1] != "IODemand" {
		t.Fatalf("data rows wrong: %v / %v", rows[1], rows[2])
	}
	// Every row has the header's width.
	for i, r := range rows {
		if len(r) != len(rows[0]) {
			t.Fatalf("row %d width %d != header %d", i, len(r), len(rows[0]))
		}
	}
}

// TestRenderEventsMatchesDirectRecord proves the writer is a pure
// renderer over the daemon's event stream: replaying "iteration" events
// (IterationInfo payloads) produces the same bytes as calling Record
// directly, and foreign events are transparently skipped.
func TestRenderEventsMatchesDirectRecord(t *testing.T) {
	infos := []core.IterationInfo{
		sampleInfo(1e9, core.LowKeep),
		sampleInfo(2e9, core.IODemand),
	}

	var direct strings.Builder
	w := NewWriter(&direct)
	for _, info := range infos {
		if err := w.Record(info); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	reg.Emit(telemetry.Event{TimeNS: 0.5e9, Subsystem: "daemon", Name: "state", Detail: "LowKeep->IODemand"})
	for _, info := range infos {
		reg.Emit(telemetry.Event{
			TimeNS: info.NowNS, Subsystem: "daemon", Name: "iteration",
			Detail: info.Action, Data: info,
		})
	}
	reg.Emit(telemetry.Event{TimeNS: 2.5e9, Subsystem: "daemon", Name: "mask_write", Detail: "ddio=0x600"})

	var replayed strings.Builder
	if err := RenderEvents(&replayed, reg.Events(telemetry.SevDebug, "")); err != nil {
		t.Fatal(err)
	}
	if direct.String() != replayed.String() {
		t.Fatalf("event replay diverged from direct rendering\n--- direct ---\n%s\n--- replay ---\n%s",
			direct.String(), replayed.String())
	}
}

func TestHookNeverPanics(t *testing.T) {
	w := NewWriter(failWriter{})
	hook := w.Hook()
	hook(sampleInfo(1e9, core.Reclaim)) // must swallow the error
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, &writeErr{} }

type writeErr struct{}

func (*writeErr) Error() string { return "nope" }
