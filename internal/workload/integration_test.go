package workload_test

import (
	"testing"

	"iatsim/internal/cache"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
)

// buildForwarder assembles a minimal slicing-model platform: one NIC VF,
// one testpmd tenant on core 0 with 2 dedicated ways.
func buildForwarder(t *testing.T, scale float64, ringEntries int) (*sim.Platform, *nic.Device, *workload.TestPMD) {
	t.Helper()
	cfg := sim.XeonGold6140(scale)
	p := sim.NewPlatform(cfg)
	dev := p.AddDevice(nic.Config{Name: "nic0", RxEntries: ringEntries, VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	fwd := workload.NewTestPMD(vf)
	if err := p.RDT.SetCLOSMask(1, cache.ContiguousMask(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.AddTenant(&sim.Tenant{
		Name:     "fwd",
		Cores:    []int{0},
		CLOS:     1,
		Priority: sim.PerformanceCritical,
		IsIO:     true,
		Workers:  []sim.Worker{fwd},
	}); err != nil {
		t.Fatal(err)
	}
	return p, dev, fwd
}

func TestPacketFlowEndToEnd(t *testing.T) {
	p, dev, fwd := buildForwarder(t, 100, 1024)
	flows := pkt.NewFlowSet(64, 0, 1)
	g := tgen.NewGenerator(p.GeneratorRate(1e6), 64, flows, 42)
	p.AttachGenerator(g, dev, 0)

	p.Run(100e6) // 100ms simulated

	vf := dev.VF(0)
	if vf.Stats.RxPackets == 0 {
		t.Fatal("no packets received")
	}
	if vf.Stats.TxPackets == 0 {
		t.Fatal("no packets transmitted")
	}
	if vf.Stats.RxDrops != 0 {
		t.Fatalf("unexpected drops at light load: %d", vf.Stats.RxDrops)
	}
	if fwd.Stats().Ops != vf.Stats.TxPackets+uint64(vf.Tx.Len()) {
		t.Fatalf("forwarded %d != transmitted %d + in-flight %d",
			fwd.Stats().Ops, vf.Stats.TxPackets, vf.Tx.Len())
	}
	// The DDIO engine must have been exercised.
	ds := p.DDIO.Stats()
	if ds.LinesWritten == 0 || ds.LinesRead == 0 {
		t.Fatalf("DDIO not exercised: %+v", ds)
	}
	// The forwarding core retired instructions at a sane IPC.
	instr, cycles := p.CoreInstr(0), p.CoreCycles(0)
	if instr == 0 || cycles == 0 {
		t.Fatal("no core activity recorded")
	}
	ipc := float64(instr) / float64(cycles)
	if ipc <= 0 || ipc > 4 {
		t.Fatalf("implausible IPC %.2f", ipc)
	}
}

func TestOverloadDropsPackets(t *testing.T) {
	p, dev, _ := buildForwarder(t, 100, 256)
	flows := pkt.NewFlowSet(64, 0, 1)
	// 64B line rate on 40GbE is ~59.5Mpps; one testpmd core cannot keep
	// up, so the Rx ring must overflow.
	g := tgen.NewGenerator(p.GeneratorRate(tgen.LineRatePPS(40, 64)), 64, flows, 42)
	p.AttachGenerator(g, dev, 0)

	p.Run(50e6)

	vf := dev.VF(0)
	if vf.Stats.RxDrops == 0 {
		t.Fatalf("expected drops at line rate; stats=%+v", vf.Stats)
	}
	if vf.Stats.TxPackets == 0 {
		t.Fatal("forwarder made no progress under overload")
	}
}

func TestDDIOLeakGrowsWithPacketSize(t *testing.T) {
	missRatio := func(size int) float64 {
		p, dev, _ := buildForwarder(t, 100, 1024)
		flows := pkt.NewFlowSet(64, 0, 1)
		rate := tgen.LineRatePPS(40, size) * 0.5
		if rate > 5e6 {
			rate = 5e6 // keep the single forwarding core ahead of arrivals
		}
		g := tgen.NewGenerator(p.GeneratorRate(rate), size, flows, 42)
		p.AttachGenerator(g, dev, 0)
		p.Run(400e6) // warm the posted-buffer rotation past the ring size
		warm := p.Hier.LLC().TotalStats()
		p.Run(600e6)
		st := p.Hier.LLC().TotalStats()
		hits := st.DDIOHits - warm.DDIOHits
		misses := st.DDIOMisses - warm.DDIOMisses
		if hits+misses == 0 {
			t.Fatalf("no DDIO traffic at size %d", size)
		}
		return float64(misses) / float64(hits+misses)
	}
	small := missRatio(64)
	large := missRatio(1500)
	if large <= small {
		t.Fatalf("expected DDIO miss ratio to grow with packet size: 64B=%.3f 1500B=%.3f", small, large)
	}
}
