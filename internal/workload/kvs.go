package workload

import (
	"iatsim/internal/addr"
	"iatsim/internal/nic"
	"iatsim/internal/sim"
	"iatsim/internal/ycsb"
)

// KVSConfig sizes a Redis-like in-memory key-value store.
type KVSConfig struct {
	Records   uint64 // preloaded record count (1M in the paper)
	ValueSize int    // bytes per value (1KB in the paper)
	// RespSize is the response wire size for reads (value + framing);
	// writes acknowledge with a single line.
	RespSize int
}

// DefaultKVSConfig matches the paper's Redis setup: 1M records of 1KB.
func DefaultKVSConfig() KVSConfig {
	return KVSConfig{Records: 1 << 20, ValueSize: 1024, RespSize: 1088}
}

// KVS models a Redis-style single-threaded in-memory store serving YCSB
// requests that arrive as packets on a virtio port (through the virtual
// switch, as in the paper's aggregation-model KVS experiment). Each request
// costs an index probe, value-sized data movement, and a response copy; the
// store's LLC behaviour therefore tracks the Zipfian locality of the
// request stream.
type KVS struct {
	Port *nic.VirtioPort
	cfg  KVSConfig

	index  addr.Region // 1 line per record (hash bucket + robj header)
	values addr.Region // ValueSize per record

	ParseInstr int64
	OpInstr    int64
	Burst      int

	stats OpStats
	hist  ycsb.Histogram
	drops uint64
}

// NewKVS builds a store preloaded with cfg.Records records.
func NewKVS(port *nic.VirtioPort, cfg KVSConfig, al *addr.Allocator) *KVS {
	if cfg.Records == 0 {
		cfg = DefaultKVSConfig()
	}
	return &KVS{
		Port:       port,
		cfg:        cfg,
		index:      al.Alloc(cfg.Records*addr.LineSize, 0),
		values:     al.Alloc(cfg.Records*uint64(cfg.ValueSize), 0),
		ParseInstr: 200,
		OpInstr:    300,
		Burst:      16,
	}
}

// valueAddr returns the first line of a record's value.
func (k *KVS) valueAddr(key uint64) uint64 {
	return k.values.Base + (key%k.cfg.Records)*uint64(k.cfg.ValueSize)
}

// Run implements sim.Worker: drain requests, execute, respond.
func (k *KVS) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		if k.Port.Down.Empty() {
			idlePoll(ctx)
			continue
		}
		for b := 0; b < k.Burst && !k.Port.Down.Empty() && ctx.Remaining() > 0; b++ {
			slot, e, _ := k.Port.Down.Pop()
			start := ctx.Remaining()
			ctx.Access(k.Port.Down.DescAddr(slot), false)
			ctx.AccessRange(e.Buf, e.Pkt.Size, false) // read request
			ctx.Compute(k.ParseInstr)

			req, _ := e.Pkt.App.(ycsb.Request)
			key := req.Key % k.cfg.Records
			// Index probe (hash bucket + object header).
			ctx.Access(k.index.Line(int(key)), req.Op != ycsb.Read)
			respSize := 64
			switch req.Op {
			case ycsb.Read:
				ctx.AccessRange(k.valueAddr(key), k.cfg.ValueSize, false)
				respSize = k.cfg.RespSize
			case ycsb.Update, ycsb.Insert:
				ctx.AccessRange(k.valueAddr(key), k.cfg.ValueSize, true)
			case ycsb.ReadModifyWrite:
				ctx.AccessRange(k.valueAddr(key), k.cfg.ValueSize, false)
				ctx.AccessRange(k.valueAddr(key), k.cfg.ValueSize, true)
			case ycsb.Scan:
				n := req.ScanLen
				if n < 1 {
					n = 1
				}
				for i := 0; i < n; i++ {
					ctx.AccessRange(k.valueAddr(key+uint64(i)), k.cfg.ValueSize, false)
				}
				respSize = k.cfg.RespSize
			}
			ctx.Compute(k.OpInstr)

			// Response.
			rbuf, ok := k.Port.GetBuf()
			if !ok {
				k.drops++
				k.Port.Release(e.Buf)
				continue
			}
			ctx.AccessRange(rbuf, respSize, true)
			resp := e.Pkt
			resp.Size = respSize
			if uslot, ok := k.Port.PushUp(nic.Entry{Pkt: resp, Buf: rbuf}); ok {
				ctx.Access(k.Port.Up.DescAddr(uslot), true)
			}
			k.Port.Release(e.Buf)

			svc := start - ctx.Remaining()
			k.stats.Ops++
			k.stats.LatCycles += uint64(svc)
			// End-to-end latency: NIC arrival to service completion.
			k.hist.Record(ctx.NowNS() - e.Pkt.ArrivalNS + ctx.CyclesNS(svc))
		}
	}
}

// Stats returns cumulative operation statistics.
func (k *KVS) Stats() OpStats { return k.stats }

// Hist returns the end-to-end latency histogram (shared across the store's
// lifetime; Reset between measurement phases).
func (k *KVS) Hist() *ycsb.Histogram { return &k.hist }

// Drops returns requests dropped for want of response buffers.
func (k *KVS) Drops() uint64 { return k.drops }
