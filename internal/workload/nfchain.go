package workload

import (
	"iatsim/internal/addr"
	"iatsim/internal/nic"
	"iatsim/internal/sim"
	"iatsim/internal/ycsb"
)

// NFChain models the FastClick-based stateful service chain of the paper's
// NFV experiment (Sec. VI-C): a classifier-based firewall, an
// AggregateIPFlows-style flow statistics stage, and a network address/port
// translator (NAPT), run back to back on each packet of one VLAN's traffic
// arriving on a dedicated SR-IOV VF (slicing model).
type NFChain struct {
	VF *nic.VF

	rules   addr.Region // firewall classifier rules
	flowTbl addr.Region // per-flow statistics
	naptTbl addr.Region // translation table

	// RuleProbes is how many classifier lines a packet traverses.
	RuleProbes  int
	PerPktInstr int64
	Burst       int

	stats   OpStats
	txDrops uint64
	hist    ycsb.Histogram
	prevLat float64
	jitter  float64 // sum of |lat_i - lat_{i-1}|, the paper's "time variance"
}

// NewNFChain builds a chain instance sized for the given flow count.
func NewNFChain(vf *nic.VF, flows int, al *addr.Allocator) *NFChain {
	if flows < 1 {
		flows = 1
	}
	return &NFChain{
		VF:          vf,
		rules:       al.Alloc(256*addr.LineSize, 0), // 256-rule classifier
		flowTbl:     al.Alloc(uint64(flows)*addr.LineSize, 0),
		naptTbl:     al.Alloc(uint64(flows)*addr.LineSize, 0),
		RuleProbes:  8,
		PerPktInstr: 350,
		Burst:       32,
	}
}

// Run implements sim.Worker.
func (n *NFChain) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		if n.VF.Rx.Empty() {
			idlePoll(ctx)
			continue
		}
		for b := 0; b < n.Burst && !n.VF.Rx.Empty() && ctx.Remaining() > 0; b++ {
			slot, e, _ := n.VF.Rx.Pop()
			start := ctx.Remaining()
			ctx.Access(n.VF.Rx.DescAddr(slot), false)
			n.VF.ReplenishRx(slot)
			ctx.Access(n.VF.Rx.DescAddr(slot), true) // post fresh descriptor
			ctx.Access(e.Buf, false)                 // parse
			h := e.Pkt.Flow.Hash()
			// NF1: firewall — linear classifier walk.
			for p := 0; p < n.RuleProbes; p++ {
				ctx.Access(n.rules.Line(p), false)
			}
			// NF2: flow stats — read-modify-write of the flow record.
			fl := n.flowTbl.Line(int(h % uint64(n.flowTbl.Lines())))
			ctx.Access(fl, false)
			ctx.Access(fl, true)
			// NF3: NAPT — translation lookup + header rewrite.
			ctx.Access(n.naptTbl.Line(int((h>>16)%uint64(n.naptTbl.Lines()))), false)
			ctx.Access(e.Buf, true)
			ctx.Compute(n.PerPktInstr)
			if txSlot := n.VF.Tx.Push(e); txSlot < 0 {
				n.txDrops++
				n.VF.Pool.Put(e.Buf)
			} else {
				ctx.Access(n.VF.Tx.DescAddr(txSlot), true)
			}
			svc := start - ctx.Remaining()
			n.stats.Ops++
			n.stats.LatCycles += uint64(svc)
			lat := ctx.NowNS() - e.Pkt.ArrivalNS + ctx.CyclesNS(svc)
			n.hist.Record(lat)
			if n.prevLat > 0 {
				d := lat - n.prevLat
				if d < 0 {
					d = -d
				}
				n.jitter += d
			}
			n.prevLat = lat
		}
	}
}

// Hist returns the per-packet latency histogram (arrival to service
// completion), for the round-trip latency observations of Sec. VI-C.
func (n *NFChain) Hist() *ycsb.Histogram { return &n.hist }

// Jitter returns the cumulative |latency delta| between consecutive
// packets — the paper's "time variance between two consecutive packets".
func (n *NFChain) Jitter() float64 { return n.jitter }

// Stats returns cumulative per-packet statistics.
func (n *NFChain) Stats() OpStats { return n.stats }

// TxDrops returns packets dropped at a full Tx ring.
func (n *NFChain) TxDrops() uint64 { return n.txDrops }
