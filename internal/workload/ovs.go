package workload

import (
	"math/bits"

	"iatsim/internal/addr"
	"iatsim/internal/nic"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
)

// OVSStats counts virtual-switch activity.
type OVSStats struct {
	Packets     uint64 // packets switched (both directions)
	EMCHits     uint64
	MegaLookups uint64
	Drops       uint64 // packets dropped at a full destination
	BytesCopied uint64
}

// OVS models the OVS-DPDK virtual switch of the aggregation model: an exact
// match cache (EMC) in front of a megaflow (wildcard) classifier, vhost-style
// copies between NIC mbufs and tenant virtio buffers, and polling workers
// pinned to the stack's dedicated cores.
//
// The flow-count sensitivity of Fig. 9 emerges from two effects: the EMC
// (8192 entries) stops absorbing lookups once the offered flow count
// exceeds it, and the megaflow classifier both probes more subtables and
// touches a larger table footprint as flows grow.
type OVS struct {
	emc  addr.Region
	mega addr.Region

	// EMCEntries is the exact-match-cache capacity (8192 in OVS-DPDK).
	EMCEntries int
	// Flows is the distinct flow count offered, used to model EMC
	// thrashing and subtable growth.
	Flows int

	// NICPorts and VirtioPorts are the switch's attachments; Route maps
	// (ingress kind, index, flow) to an egress port.
	NICPorts    []*nic.VF
	VirtioPorts []*nic.VirtioPort
	// RouteNIC maps packets arriving on NIC port i to a virtio port
	// index; RouteVirtio maps packets arriving on virtio port i to a NIC
	// port index. Both default to identity.
	RouteNIC    func(i int, f pkt.Flow) int
	RouteVirtio func(i int, f pkt.Flow) int

	// EMCHitInstr / MegaInstr are per-packet instruction costs of the
	// two lookup paths.
	EMCHitInstr int64
	MegaInstr   int64

	stats OVSStats
}

// NewOVS builds a switch sized for up to flows distinct flows. The live
// flow count starts at flows and can be changed at runtime with SetFlows
// (Fig. 9 ramps it while the switch runs).
func NewOVS(flows int, al *addr.Allocator) *OVS {
	if flows < 1 {
		flows = 1
	}
	o := &OVS{
		emc:         al.Alloc(8192*addr.LineSize, 0),
		mega:        al.Alloc(uint64(flows)*2*addr.LineSize, 0),
		EMCEntries:  8192,
		Flows:       flows,
		EMCHitInstr: 120,
		MegaInstr:   400,
	}
	o.RouteNIC = func(i int, _ pkt.Flow) int { return i % maxInt(1, len(o.VirtioPorts)) }
	o.RouteVirtio = func(i int, _ pkt.Flow) int { return i % maxInt(1, len(o.NICPorts)) }
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Stats returns cumulative switch statistics.
func (o *OVS) Stats() OVSStats { return o.stats }

// SetFlows changes the live flow count (clamped to the table the switch was
// sized for): the megaflow working set and the EMC hit rate track it, so a
// running switch sees its flow table grow as the paper's Fig. 9 traffic
// ramp adds flows.
func (o *OVS) SetFlows(n int) {
	if n < 1 {
		n = 1
	}
	if max := o.mega.Lines() / 2; n > max {
		n = max
	}
	o.Flows = n
}

// subtables models the number of megaflow subtables probed on an EMC miss:
// it grows logarithmically with the flow count, reflecting OVS's
// tuple-space search.
func (o *OVS) subtables() int {
	n := 1 + bits.Len(uint(o.Flows))/4
	if n > 8 {
		n = 8
	}
	return n
}

// classify charges the lookup cost of one packet and returns nothing; the
// destination comes from the Route functions.
func (o *OVS) classify(ctx *sim.Ctx, f pkt.Flow) {
	h := f.Hash()
	ctx.Access(o.emc.Line(int(h%uint64(o.emc.Lines()))), false)
	// A flow is EMC-resident when it falls in the cache's share of the
	// universe — a steady-state thrashing approximation giving hit rate
	// min(1, EMCEntries/Flows).
	if int(h%uint64(o.Flows)) < o.EMCEntries {
		o.stats.EMCHits++
		ctx.Compute(o.EMCHitInstr)
		return
	}
	o.stats.MegaLookups++
	liveLines := uint64(2 * o.Flows)
	for s := 0; s < o.subtables(); s++ {
		ctx.Access(o.mega.Line(int((h>>uint(4*s))%liveLines)), false)
	}
	ctx.Compute(o.MegaInstr)
	// EMC insertion.
	ctx.Access(o.emc.Line(int(h%uint64(o.emc.Lines()))), true)
}

// copyPayload charges a vhost-style copy of n bytes from src to dst.
func (o *OVS) copyPayload(ctx *sim.Ctx, src, dst uint64, n int) {
	ctx.AccessRange(src, n, false)
	ctx.AccessRange(dst, n, true)
	o.stats.BytesCopied += uint64(n)
}

// Worker returns a polling worker serving the given NIC ports and virtio
// ports (indices into the switch's attachment slices). The paper's setup
// runs OVS on two dedicated cores; build one worker per core with a
// disjoint port partition, or the same full set for shared polling.
func (o *OVS) Worker(nicPorts, virtioPorts []int) *OVSWorker {
	return &OVSWorker{sw: o, nicPorts: nicPorts, virtioPorts: virtioPorts, burst: 32}
}

// OVSWorker is one OVS PMD thread.
type OVSWorker struct {
	sw          *OVS
	nicPorts    []int
	virtioPorts []int
	burst       int
}

// Run implements sim.Worker: round-robin over the assigned ports, switching
// up to one burst per port per pass.
func (w *OVSWorker) Run(ctx *sim.Ctx) {
	o := w.sw
	for ctx.Remaining() > 0 {
		idle := true
		for _, i := range w.nicPorts {
			vf := o.NICPorts[i]
			for b := 0; b < w.burst && !vf.Rx.Empty() && ctx.Remaining() > 0; b++ {
				idle = false
				slot, e, _ := vf.Rx.Pop()
				ctx.Access(vf.Rx.DescAddr(slot), false)
				vf.ReplenishRx(slot)
				ctx.Access(vf.Rx.DescAddr(slot), true) // post fresh descriptor
				ctx.Access(e.Buf, false)               // parse headers
				o.classify(ctx, e.Pkt.Flow)
				dst := o.RouteNIC(i, e.Pkt.Flow)
				vp := o.VirtioPorts[dst]
				dslot, dbuf, ok := vp.PushDown(e.Pkt)
				if !ok {
					o.stats.Drops++
				} else {
					o.copyPayload(ctx, e.Buf, dbuf, e.Pkt.Size)
					ctx.Access(vp.Down.DescAddr(dslot), true)
					o.stats.Packets++
				}
				vf.Pool.Put(e.Buf)
			}
		}
		for _, i := range w.virtioPorts {
			vp := o.VirtioPorts[i]
			for b := 0; b < w.burst && !vp.Up.Empty() && ctx.Remaining() > 0; b++ {
				idle = false
				slot, e, _ := vp.Up.Pop()
				ctx.Access(vp.Up.DescAddr(slot), false)
				ctx.Access(e.Buf, false)
				o.classify(ctx, e.Pkt.Flow)
				dst := o.RouteVirtio(i, e.Pkt.Flow)
				vf := o.NICPorts[dst]
				nbuf, ok := vf.Pool.Get()
				if !ok || vf.Tx.Full() {
					if ok {
						vf.Pool.Put(nbuf)
					}
					o.stats.Drops++
					vp.Release(e.Buf)
					continue
				}
				o.copyPayload(ctx, e.Buf, nbuf, e.Pkt.Size)
				tslot := vf.Tx.Push(nic.Entry{Pkt: e.Pkt, Buf: nbuf})
				ctx.Access(vf.Tx.DescAddr(tslot), true)
				vp.Release(e.Buf)
				o.stats.Packets++
			}
		}
		if idle {
			idlePoll(ctx)
		}
	}
}
