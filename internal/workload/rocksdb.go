package workload

import (
	"math/rand"

	"iatsim/internal/addr"
	"iatsim/internal/sim"
	"iatsim/internal/ycsb"
)

// RocksDBConfig sizes the memtable-resident store of the paper's
// application study (Sec. VI-C: 10K records of 1KB, all in the memtable so
// no storage I/O ever happens).
type RocksDBConfig struct {
	Records   uint64
	ValueSize int
	// SkipHeight is the expected pointer-chase depth of a memtable
	// (skiplist) lookup; log2(Records) by default.
	SkipHeight int
}

// DefaultRocksDBConfig matches the paper: 10K x 1KB.
func DefaultRocksDBConfig() RocksDBConfig {
	return RocksDBConfig{Records: 10000, ValueSize: 1024, SkipHeight: 14}
}

// RocksDB models the RocksDB memtable path: every operation walks a
// skiplist-like index (dependent line accesses over a node region) and then
// reads or writes the value. It is driven by a local YCSB client loop — it
// is the *non-networking* PC workload of Figs. 12/13 — and runs to a target
// operation count so execution time and per-op latency are measurable.
type RocksDB struct {
	cfg    RocksDBConfig
	nodes  addr.Region
	values addr.Region

	gen *ycsb.Generator
	rng *rand.Rand

	// TargetOps ends the run (0 = run forever).
	TargetOps uint64
	OpInstr   int64

	stats    OpStats
	hists    map[ycsb.Op]*ycsb.Histogram
	done     bool
	finishNS float64
}

// NewRocksDB builds a store running YCSB workload w.
func NewRocksDB(cfg RocksDBConfig, w ycsb.Workload, targetOps uint64, al *addr.Allocator, seed int64) *RocksDB {
	if cfg.Records == 0 {
		cfg = DefaultRocksDBConfig()
	}
	if cfg.SkipHeight == 0 {
		cfg.SkipHeight = 14
	}
	return &RocksDB{
		cfg: cfg,
		// Skiplist nodes: ~4 lines per record (node + key + meta).
		nodes:     al.Alloc(cfg.Records*4*addr.LineSize, 0),
		values:    al.Alloc(cfg.Records*uint64(cfg.ValueSize), 0),
		gen:       ycsb.NewGenerator(w, cfg.Records, seed),
		rng:       newRNG(seed + 7),
		TargetOps: targetOps,
		OpInstr:   600,
	}
}

// Done reports whether the target op count was reached.
func (r *RocksDB) Done() bool { return r.done }

// FinishNS returns the completion time (0 if not done).
func (r *RocksDB) FinishNS() float64 { return r.finishNS }

// Stats returns cumulative operation statistics.
func (r *RocksDB) Stats() OpStats { return r.stats }

// Hist returns the per-op-type latency histogram for op, or nil.
func (r *RocksDB) Hist(op ycsb.Op) *ycsb.Histogram {
	if r.hists == nil {
		return nil
	}
	return r.hists[op]
}

// Hists returns all per-op histograms.
func (r *RocksDB) Hists() map[ycsb.Op]*ycsb.Histogram { return r.hists }

func (r *RocksDB) hist(op ycsb.Op) *ycsb.Histogram {
	if r.hists == nil {
		r.hists = make(map[ycsb.Op]*ycsb.Histogram)
	}
	h := r.hists[op]
	if h == nil {
		h = &ycsb.Histogram{}
		r.hists[op] = h
	}
	return h
}

// walk charges a skiplist descent to key.
func (r *RocksDB) walk(ctx *sim.Ctx, key uint64) int64 {
	var lat int64
	n := r.nodes.Lines()
	x := key*0x9E3779B97F4A7C15 + 1
	for h := 0; h < r.cfg.SkipHeight; h++ {
		x ^= x >> 27
		x *= 0xBF58476D1CE4E5B9
		lat += ctx.Access(r.nodes.Line(int(x%uint64(n))), false)
	}
	return lat
}

// Run implements sim.Worker.
func (r *RocksDB) Run(ctx *sim.Ctx) {
	if r.done {
		return
	}
	vs := r.cfg.ValueSize
	for ctx.Remaining() > 0 {
		req := r.gen.Next()
		key := req.Key % r.cfg.Records
		start := ctx.Remaining()
		lat := r.walk(ctx, key)
		val := r.values.Base + key*uint64(vs)
		switch req.Op {
		case ycsb.Read:
			lat += ctx.AccessRange(val, vs, false)
		case ycsb.Update, ycsb.Insert:
			lat += ctx.AccessRange(val, vs, true)
		case ycsb.ReadModifyWrite:
			lat += ctx.AccessRange(val, vs, false)
			lat += ctx.AccessRange(val, vs, true)
		case ycsb.Scan:
			n := req.ScanLen
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				lat += ctx.AccessRange(r.values.Base+((key+uint64(i))%r.cfg.Records)*uint64(vs), vs, false)
			}
		}
		ctx.Compute(r.OpInstr)
		_ = lat
		svc := start - ctx.Remaining()
		r.stats.Ops++
		r.stats.LatCycles += uint64(svc)
		r.hist(req.Op).Record(ctx.CyclesNS(svc))
		if r.TargetOps > 0 && r.stats.Ops >= r.TargetOps {
			r.done = true
			r.finishNS = ctx.NowNS()
			return
		}
	}
}
