package workload

import (
	"math/rand"

	"iatsim/internal/addr"
	"iatsim/internal/nvme"
	"iatsim/internal/sim"
	"iatsim/internal/ycsb"
)

// SPDKServer models an SPDK-style polled-mode storage server (Sec. II-C
// names SPDK as the storage-side analogue of the user-space network
// stacks): it keeps a target queue depth of block reads outstanding against
// an NVMe device, reaps completions by polling the CQ, and touches every
// returned block (checksum/serve). Completed reads were DMA'd through DDIO,
// so the server's data accesses hit the LLC — unless the in-flight block
// footprint outgrew the DDIO ways and leaked to memory (the storage
// incarnation of the Leaky DMA problem: QueueDepth x BlockBytes plays the
// role of ring-entries x packet-size).
type SPDKServer struct {
	Dev *nvme.Device
	QP  int

	// TargetQD is the read queue depth the server maintains.
	TargetQD int
	// BlockBytes is the transfer size per command.
	BlockBytes int
	// WriteFrac is the fraction of submissions that are writes.
	WriteFrac float64

	bufs     addr.Region
	nbufs    int
	nextBuf  int
	capacity uint64 // device LBAs
	rng      *rand.Rand

	// PerIOInstr is the host-side instruction cost per completed I/O.
	PerIOInstr int64

	stats   OpStats
	hist    ycsb.Histogram
	reapIdx uint64
}

// NewSPDKServer builds a server against queue pair qp of dev. Buffers (one
// per outstanding command slot) come from al.
func NewSPDKServer(dev *nvme.Device, qp int, targetQD, blockBytes int, al *addr.Allocator, seed int64) *SPDKServer {
	if targetQD < 1 {
		targetQD = 1
	}
	if blockBytes < 512 {
		blockBytes = 4096
	}
	nbufs := 2 * targetQD
	return &SPDKServer{
		Dev:        dev,
		QP:         qp,
		TargetQD:   targetQD,
		BlockBytes: blockBytes,
		bufs:       al.Alloc(uint64(nbufs)*uint64(blockBytes), 0),
		nbufs:      nbufs,
		capacity:   1 << 26, // 64M LBAs: far beyond any cache
		rng:        newRNG(seed),
		PerIOInstr: 600,
	}
}

// Stats returns cumulative I/O statistics.
func (s *SPDKServer) Stats() OpStats { return s.stats }

// Hist returns the submit-to-reap latency histogram (simulated ns).
func (s *SPDKServer) Hist() *ycsb.Histogram { return &s.hist }

// Run implements sim.Worker: a classic SPDK poller — reap, process, refill.
func (s *SPDKServer) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		comps := s.Dev.Reap(s.QP, 8)
		if len(comps) == 0 && s.Dev.QP(s.QP).Outstanding() >= s.TargetQD {
			idlePoll(ctx)
			continue
		}
		for _, c := range comps {
			start := ctx.Remaining()
			// Poll the CQ entry, then consume the block.
			ctx.Access(s.Dev.CQLine(s.QP, s.reapIdx), false)
			s.reapIdx++
			if c.Cmd.Op == nvme.Read {
				ctx.AccessRange(c.Cmd.Buf, c.Cmd.Bytes, false)
			}
			ctx.Compute(s.PerIOInstr)
			svc := start - ctx.Remaining()
			s.stats.Ops++
			s.stats.LatCycles += uint64(svc)
			s.hist.Record(ctx.NowNS() - c.Cmd.SubmitNS + ctx.CyclesNS(svc))
		}
		// Refill to the target depth.
		for s.Dev.QP(s.QP).Outstanding() < s.TargetQD && ctx.Remaining() > 0 {
			op := nvme.Read
			if s.WriteFrac > 0 && s.rng.Float64() < s.WriteFrac {
				op = nvme.Write
			}
			buf := s.bufs.Base + uint64(s.nextBuf)*uint64(s.BlockBytes)
			s.nextBuf = (s.nextBuf + 1) % s.nbufs
			if op == nvme.Write {
				// Prepare the payload (host writes the buffer).
				ctx.AccessRange(buf, s.BlockBytes, true)
			}
			cmd := nvme.Command{
				Op:    op,
				LBA:   uint64(s.rng.Int63()) % s.capacity,
				Bytes: s.BlockBytes,
				Buf:   buf,
			}
			ctx.Compute(120) // submission path
			if !s.Dev.Submit(s.QP, cmd, ctx.NowNS()) {
				break
			}
		}
	}
}
