package workload

import (
	"fmt"
	"math/rand"

	"iatsim/internal/addr"
	"iatsim/internal/sim"
)

// SpecProfile is a SPEC CPU2006 benchmark reduced to its memory-access
// signature: a hot working set accessed with probability HotProb, a cold
// working set for the remainder, a memory-operation density, and a total
// instruction count that defines "execution time" for the normalised
// run-time experiments (Fig. 12). The shapes follow Jaleel's
// instrumentation-driven SPEC2006 memory characterisation, the reference
// the paper cites for its benchmark selection.
type SpecProfile struct {
	Name          string
	HotBytes      uint64
	ColdBytes     uint64
	HotProb       float64
	MemPer100Inst float64 // LLC-bound memory ops per 100 instructions (post L1/L2 filtering is emergent)
	Streaming     bool    // sequential rather than random cold-set access
}

// SpecProfiles returns the memory-sensitive subset of SPEC2006 the paper
// runs (Sec. VI-C cites [35] for the selection).
func SpecProfiles() []SpecProfile {
	// MemPer100Inst counts accesses that leave the L1 (the L2/LLC-bound
	// demand stream), tuned so the profiles land in the IPC and LLC
	// sensitivity ranges the characterisation reports.
	return []SpecProfile{
		{Name: "mcf", HotBytes: 4 << 20, ColdBytes: 1600 << 20, HotProb: 0.60, MemPer100Inst: 8},
		{Name: "omnetpp", HotBytes: 6 << 20, ColdBytes: 150 << 20, HotProb: 0.75, MemPer100Inst: 6},
		{Name: "xalancbmk", HotBytes: 8 << 20, ColdBytes: 60 << 20, HotProb: 0.80, MemPer100Inst: 5},
		{Name: "soplex", HotBytes: 4 << 20, ColdBytes: 250 << 20, HotProb: 0.65, MemPer100Inst: 6},
		{Name: "sphinx3", HotBytes: 8 << 20, ColdBytes: 180 << 20, HotProb: 0.70, MemPer100Inst: 5},
		{Name: "libquantum", HotBytes: 0, ColdBytes: 32 << 20, HotProb: 0, MemPer100Inst: 4, Streaming: true},
		{Name: "milc", HotBytes: 2 << 20, ColdBytes: 180 << 20, HotProb: 0.55, MemPer100Inst: 6},
		{Name: "lbm", HotBytes: 0, ColdBytes: 400 << 20, HotProb: 0, MemPer100Inst: 5, Streaming: true},
		{Name: "gcc", HotBytes: 2 << 20, ColdBytes: 100 << 20, HotProb: 0.88, MemPer100Inst: 4},
	}
}

// SpecProfileByName finds a profile.
func SpecProfileByName(name string) (SpecProfile, error) {
	for _, p := range SpecProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return SpecProfile{}, fmt.Errorf("workload: unknown SPEC profile %q", name)
}

// Spec executes a SpecProfile. It runs to a target instruction count; Done
// and FinishNS report completion, so "execution time normalised to solo
// run" (Fig. 12) is directly measurable.
type Spec struct {
	Profile SpecProfile

	hot, cold addr.Region
	rng       *rand.Rand
	streamPos int

	// TargetInstr is the instruction count at which the run completes; 0
	// means run forever.
	TargetInstr uint64

	retired  uint64
	done     bool
	finishNS float64
}

// NewSpec instantiates a profile. Cold sets are address space only — they
// cost nothing until touched.
func NewSpec(p SpecProfile, al *addr.Allocator, targetInstr uint64, seed int64) *Spec {
	s := &Spec{Profile: p, rng: newRNG(seed), TargetInstr: targetInstr}
	if p.HotBytes > 0 {
		s.hot = al.Alloc(p.HotBytes, 0)
	}
	if p.ColdBytes > 0 {
		s.cold = al.Alloc(p.ColdBytes, 0)
	}
	return s
}

// Done reports whether the target instruction count has been reached.
func (s *Spec) Done() bool { return s.done }

// FinishNS returns the simulated time at which the run completed (0 if not
// yet done).
func (s *Spec) FinishNS() float64 { return s.finishNS }

// Retired returns retired instructions so far.
func (s *Spec) Retired() uint64 { return s.retired }

// Run implements sim.Worker.
func (s *Spec) Run(ctx *sim.Ctx) {
	if s.done {
		return // finished: the core goes idle
	}
	p := s.Profile
	gap := int64(100/p.MemPer100Inst) - 1
	if gap < 0 {
		gap = 0
	}
	for ctx.Remaining() > 0 {
		ctx.Compute(gap)
		write := s.rng.Intn(4) == 0 // ~25% stores
		switch {
		case p.HotBytes > 0 && s.rng.Float64() < p.HotProb:
			ctx.Access(s.hot.Line(s.rng.Intn(s.hot.Lines())), write)
		case p.Streaming:
			// Streaming kernels are prefetch-friendly: charge
			// overlapped latency.
			s.streamPos++
			ctx.AccessPipelined(s.cold.Line(s.streamPos), write)
		default:
			ctx.Access(s.cold.Line(s.rng.Intn(s.cold.Lines())), write)
		}
		s.retired += uint64(gap) + 1
		if s.TargetInstr > 0 && s.retired >= s.TargetInstr {
			s.done = true
			s.finishNS = ctx.NowNS()
			return
		}
	}
}
