package workload

import (
	"iatsim/internal/addr"
	"iatsim/internal/nic"
	"iatsim/internal/sim"
)

// TestPMD models DPDK testpmd in mac-swap forwarding mode: it bounces every
// packet received on its VF back out, touching only the first payload line
// (the Ethernet header), exactly like the containers in the paper's Leaky
// DMA and Latent Contender experiments.
type TestPMD struct {
	VF *nic.VF

	// PerPktInstr is the fixed instruction cost of one forwarded packet.
	PerPktInstr int64
	// Burst is the maximum packets handled per poll (DPDK's rx burst).
	Burst int

	stats   OpStats
	txDrops uint64
}

// NewTestPMD binds a forwarder to vf.
func NewTestPMD(vf *nic.VF) *TestPMD {
	return &TestPMD{VF: vf, PerPktInstr: 80, Burst: 32}
}

// Run implements sim.Worker.
func (t *TestPMD) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		if t.VF.Rx.Empty() {
			idlePoll(ctx)
			continue
		}
		for b := 0; b < t.Burst && !t.VF.Rx.Empty() && ctx.Remaining() > 0; b++ {
			slot, e, _ := t.VF.Rx.Pop()
			start := ctx.Remaining()
			ctx.Access(t.VF.Rx.DescAddr(slot), false) // read descriptor
			t.VF.ReplenishRx(slot)
			ctx.Access(t.VF.Rx.DescAddr(slot), true) // post fresh descriptor
			ctx.Access(e.Buf, false)                 // read Ethernet header
			ctx.Access(e.Buf, true)                  // mac swap (store)
			ctx.Compute(t.PerPktInstr)
			txSlot := t.VF.Tx.Push(e)
			if txSlot < 0 {
				t.txDrops++
				t.VF.Pool.Put(e.Buf)
			} else {
				ctx.Access(t.VF.Tx.DescAddr(txSlot), true) // write tx descriptor
			}
			t.stats.Ops++
			t.stats.LatCycles += uint64(start - ctx.Remaining())
		}
	}
}

// Stats returns cumulative per-packet statistics.
func (t *TestPMD) Stats() OpStats { return t.stats }

// TxDrops returns packets dropped because the Tx ring was full.
func (t *TestPMD) TxDrops() uint64 { return t.txDrops }

// L3Fwd models DPDK l3fwd: every received packet is looked up in a hash
// flow table (1M flows in the paper's RFC2544 experiment, Fig. 3) and
// forwarded if matched. The flow table occupies one line per flow, so large
// tables have a large LLC footprint — the property Fig. 9's flow-count
// sweep exercises.
type L3Fwd struct {
	VF    *nic.VF
	table addr.Region

	// PerPktInstr is the fixed instruction cost per forwarded packet
	// (parsing, hashing, rewrite).
	PerPktInstr int64
	// Probes is the number of flow-table lines inspected per lookup
	// (cuckoo-style double probe).
	Probes int
	Burst  int

	stats   OpStats
	txDrops uint64
}

// NewL3Fwd binds a router with a flows-entry table to vf.
func NewL3Fwd(vf *nic.VF, flows int, al *addr.Allocator) *L3Fwd {
	return &L3Fwd{
		VF:          vf,
		table:       al.Alloc(uint64(flows)*addr.LineSize, 0),
		PerPktInstr: 150,
		Probes:      2,
		Burst:       32,
	}
}

// TableBytes returns the flow table footprint.
func (l *L3Fwd) TableBytes() uint64 { return l.table.Size }

// Run implements sim.Worker.
func (l *L3Fwd) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		if l.VF.Rx.Empty() {
			idlePoll(ctx)
			continue
		}
		for b := 0; b < l.Burst && !l.VF.Rx.Empty() && ctx.Remaining() > 0; b++ {
			slot, e, _ := l.VF.Rx.Pop()
			start := ctx.Remaining()
			ctx.Access(l.VF.Rx.DescAddr(slot), false)
			l.VF.ReplenishRx(slot)
			ctx.Access(l.VF.Rx.DescAddr(slot), true) // post fresh descriptor
			ctx.Access(e.Buf, false)                 // parse headers
			h := e.Pkt.Flow.Hash()
			// Flow-table probes are software-prefetched across the rx
			// burst, as real l3fwd does.
			for p := 0; p < l.Probes; p++ {
				ctx.AccessPipelined(l.table.Line(int((h>>uint(8*p))%uint64(l.table.Lines()))), false)
			}
			ctx.Access(e.Buf, true) // rewrite L2/L3 headers
			ctx.Compute(l.PerPktInstr)
			txSlot := l.VF.Tx.Push(e)
			if txSlot < 0 {
				l.txDrops++
				l.VF.Pool.Put(e.Buf)
			} else {
				ctx.Access(l.VF.Tx.DescAddr(txSlot), true)
			}
			l.stats.Ops++
			l.stats.LatCycles += uint64(start - ctx.Remaining())
		}
	}
}

// Stats returns cumulative per-packet statistics.
func (l *L3Fwd) Stats() OpStats { return l.stats }

// TxDrops returns packets dropped because the Tx ring was full.
func (l *L3Fwd) TxDrops() uint64 { return l.txDrops }
