package workload

import (
	"iatsim/internal/nic"
	"iatsim/internal/sim"
)

// VirtioBounce is the tenant-side counterpart of TestPMD for the
// aggregation model: a container bouncing everything it receives on its
// virtio port straight back (zero-copy buffer hand-off from the Down to the
// Up ring), as the testpmd containers of the paper's Leaky DMA experiment
// do (Sec. VI-B).
type VirtioBounce struct {
	Port *nic.VirtioPort

	PerPktInstr int64
	Burst       int

	stats OpStats
}

// NewVirtioBounce binds a bouncer to port.
func NewVirtioBounce(port *nic.VirtioPort) *VirtioBounce {
	return &VirtioBounce{Port: port, PerPktInstr: 80, Burst: 32}
}

// Run implements sim.Worker.
func (v *VirtioBounce) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		if v.Port.Down.Empty() {
			idlePoll(ctx)
			continue
		}
		for b := 0; b < v.Burst && !v.Port.Down.Empty() && ctx.Remaining() > 0; b++ {
			slot, e, _ := v.Port.Down.Pop()
			start := ctx.Remaining()
			ctx.Access(v.Port.Down.DescAddr(slot), false)
			ctx.Access(e.Buf, false) // header
			ctx.Access(e.Buf, true)  // mac swap
			ctx.Compute(v.PerPktInstr)
			if uslot, ok := v.Port.PushUp(e); ok {
				ctx.Access(v.Port.Up.DescAddr(uslot), true)
			}
			v.stats.Ops++
			v.stats.LatCycles += uint64(start - ctx.Remaining())
		}
	}
}

// Stats returns cumulative per-packet statistics.
func (v *VirtioBounce) Stats() OpStats { return v.stats }
