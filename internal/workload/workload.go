// Package workload implements the core-side applications of the paper's
// evaluation as memory-access-faithful models: the DPDK networking apps
// (l3fwd, testpmd, an OVS-style virtual switch, a FastClick-style NF
// chain), the cloud microbenchmark X-Mem, SPEC2006-like memory profiles,
// and the key-value stores (a Redis-like networked KVS and a RocksDB-like
// memtable store) driven by YCSB.
//
// Every workload is a sim.Worker: it receives a cycle budget each microtick
// and spends it through ctx.Access / ctx.Compute, so its IPC, LLC and
// memory behaviour emerge from the cache hierarchy rather than being
// scripted.
package workload

import (
	"math/rand"

	"iatsim/internal/sim"
)

// OpStats accumulates operation counts and latency for a workload.
type OpStats struct {
	Ops       uint64
	LatCycles uint64
}

// Sub returns the delta s - o.
func (s OpStats) Sub(o OpStats) OpStats {
	return OpStats{Ops: s.Ops - o.Ops, LatCycles: s.LatCycles - o.LatCycles}
}

// AvgLatCycles returns mean cycles per operation, or 0.
func (s OpStats) AvgLatCycles() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.LatCycles) / float64(s.Ops)
}

// pollCost is the instruction cost of one empty poll iteration of a DPDK
// receive loop.
const pollCost = 40

// idlePoll charges one empty-poll iteration; used by all polling workers so
// an idle DPDK core still runs hot (as real busy-polling cores do).
func idlePoll(ctx *sim.Ctx) { ctx.Compute(pollCost) }

// newRNG builds a deterministic per-worker RNG.
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
