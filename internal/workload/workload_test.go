package workload_test

import (
	"testing"

	"iatsim/internal/addr"
	"iatsim/internal/cache"
	"iatsim/internal/nic"
	"iatsim/internal/nvme"
	"iatsim/internal/pkt"
	"iatsim/internal/sim"
	"iatsim/internal/tgen"
	"iatsim/internal/workload"
	"iatsim/internal/ycsb"
)

// smallPlatform builds a 4-core platform with a reduced hierarchy so
// workload unit tests run fast.
func smallPlatform() *sim.Platform {
	cfg := sim.XeonGold6140(100)
	cfg.Cores = 4
	cfg.Hier = cache.HierarchyConfig{
		Cores: 4,
		L1:    cache.LevelConfig{SizeBytes: 8 << 10, Ways: 4, HitCycles: 4},
		L2:    cache.LevelConfig{SizeBytes: 64 << 10, Ways: 8, HitCycles: 14},
		LLC:   cache.LLCConfig{Slices: 2, Ways: 8, SetsPerSlice: 512, HitCycles: 44},
	}
	cfg.AmbientFillPS = -1 // determinism for unit tests
	return sim.NewPlatform(cfg)
}

func addTenant(t *testing.T, p *sim.Platform, name string, core, clos int, w sim.Worker) {
	t.Helper()
	if err := p.AddTenant(&sim.Tenant{
		Name: name, Cores: []int{core}, CLOS: clos,
		Priority: sim.BestEffort, Workers: []sim.Worker{w},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestXMemThroughputTracksWorkingSet(t *testing.T) {
	run := func(ws uint64) uint64 {
		p := smallPlatform()
		x := workload.NewXMem(p.Alloc, 32<<20, ws, 1)
		addTenant(t, p, "x", 0, 1, x)
		p.Run(50e6)
		return x.Stats().Ops
	}
	small := run(64 << 10) // fits in L2
	large := run(16 << 20) // far exceeds the 2MB test LLC
	if small <= large {
		t.Fatalf("cache-resident X-Mem (%d ops) not faster than DRAM-bound (%d ops)", small, large)
	}
}

func TestXMemWorkingSetClamp(t *testing.T) {
	p := smallPlatform()
	x := workload.NewXMem(p.Alloc, 1<<20, 1<<20, 1)
	x.SetWorkingSet(64 << 20) // beyond the region: clamped
	if x.WorkingSetBytes() != 1<<20 {
		t.Fatalf("working set = %d", x.WorkingSetBytes())
	}
	x.SetWorkingSet(0)
	if x.WorkingSetBytes() != addr.LineSize {
		t.Fatalf("minimum working set = %d", x.WorkingSetBytes())
	}
}

func TestSpecRunsToCompletion(t *testing.T) {
	p := smallPlatform()
	prof, err := workload.SpecProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	s := workload.NewSpec(prof, p.Alloc, 50_000, 1)
	addTenant(t, p, "gcc", 0, 1, s)
	p.Run(200e6)
	if !s.Done() {
		t.Fatalf("gcc not done after 200ms: retired %d", s.Retired())
	}
	if s.FinishNS() <= 0 || s.FinishNS() > 200e6 {
		t.Fatalf("finish time %v", s.FinishNS())
	}
	if s.Retired() < 50_000 {
		t.Fatalf("retired %d < target", s.Retired())
	}
	// A finished spec leaves the core idle.
	cyc := p.CoreCycles(0)
	p.Run(20e6)
	if p.CoreCycles(0) != cyc {
		t.Fatal("finished spec still burning cycles")
	}
}

func TestSpecProfilesResolvable(t *testing.T) {
	for _, prof := range workload.SpecProfiles() {
		got, err := workload.SpecProfileByName(prof.Name)
		if err != nil || got.Name != prof.Name {
			t.Errorf("profile %q not resolvable", prof.Name)
		}
		if prof.MemPer100Inst <= 0 {
			t.Errorf("profile %q has no memory intensity", prof.Name)
		}
	}
	if _, err := workload.SpecProfileByName("doom"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestSpecMemoryIntensityOrdersIPC(t *testing.T) {
	ipcOf := func(name string) float64 {
		p := smallPlatform()
		prof, _ := workload.SpecProfileByName(name)
		s := workload.NewSpec(prof, p.Alloc, 0, 1)
		addTenant(t, p, name, 0, 1, s)
		p.Run(50e6)
		return float64(p.CoreInstr(0)) / float64(p.CoreCycles(0))
	}
	if mcf, gcc := ipcOf("mcf"), ipcOf("gcc"); mcf >= gcc {
		t.Fatalf("mcf IPC %.3f should be below gcc IPC %.3f", mcf, gcc)
	}
}

func TestOVSEMCHitRate(t *testing.T) {
	p := smallPlatform()
	o := workload.NewOVS(1<<16, p.Alloc)
	o.SetFlows(1 << 16) // far above the 8192-entry EMC
	vfDev := p.AddDevice(nic.Config{Name: "n0", VFs: 1})
	vf := vfDev.VF(0)
	vf.ConsumerCore = 0
	port := nic.NewVirtioPort("p0", 256, p.Alloc)
	o.NICPorts = []*nic.VF{vf}
	o.VirtioPorts = []*nic.VirtioPort{port}
	addTenant(t, p, "ovs", 0, 1, o.Worker([]int{0}, []int{0}))
	// Feed packets directly.
	fs := pkt.NewFlowSet(1<<16, 0, 1)
	for i := 0; i < 4000; i++ {
		vfDev.DeliverRx(0, pkt.Packet{Flow: fs.At(i), Size: 64}, 0)
		if i%64 == 0 {
			p.Step()
		}
		// Drain the tenant side so the port never clogs.
		for {
			_, e, ok := port.Down.Pop()
			if !ok {
				break
			}
			port.Release(e.Buf)
		}
	}
	st := o.Stats()
	if st.Packets == 0 {
		t.Fatal("switch forwarded nothing")
	}
	rate := float64(st.EMCHits) / float64(st.EMCHits+st.MegaLookups)
	want := 8192.0 / (1 << 16)
	if rate < want/2 || rate > want*2 {
		t.Fatalf("EMC hit rate %.3f, want ~%.3f", rate, want)
	}
}

func TestOVSSetFlowsClamped(t *testing.T) {
	p := smallPlatform()
	o := workload.NewOVS(1000, p.Alloc)
	o.SetFlows(10_000_000)
	if o.Flows > 1000 {
		t.Fatalf("flows %d exceed the sized table", o.Flows)
	}
	o.SetFlows(0)
	if o.Flows != 1 {
		t.Fatalf("flows = %d", o.Flows)
	}
}

func TestVirtioBounceRoundTrip(t *testing.T) {
	p := smallPlatform()
	port := nic.NewVirtioPort("p", 64, p.Alloc)
	b := workload.NewVirtioBounce(port)
	addTenant(t, p, "bounce", 0, 1, b)
	for i := 0; i < 10; i++ {
		_, buf, ok := port.PushDown(pkt.Packet{Size: 128})
		if !ok {
			t.Fatal("push down failed")
		}
		_ = buf
	}
	p.Run(2e6)
	if port.Up.Len() != 10 {
		t.Fatalf("bounced %d of 10 packets", port.Up.Len())
	}
	if b.Stats().Ops != 10 {
		t.Fatalf("ops = %d", b.Stats().Ops)
	}
}

func TestKVSServesRequests(t *testing.T) {
	p := smallPlatform()
	port := nic.NewVirtioPort("p", 64, p.Alloc)
	cfg := workload.KVSConfig{Records: 1 << 12, ValueSize: 1024, RespSize: 1088}
	k := workload.NewKVS(port, cfg, p.Alloc)
	addTenant(t, p, "kvs", 0, 1, k)
	ops := []ycsb.Op{ycsb.Read, ycsb.Update, ycsb.Insert, ycsb.ReadModifyWrite, ycsb.Scan}
	for i, op := range ops {
		pk := pkt.Packet{Size: 128, App: ycsb.Request{Op: op, Key: uint64(i), ScanLen: 3}}
		pk.ArrivalNS = p.NowNS()
		if _, _, ok := port.PushDown(pk); !ok {
			t.Fatal("push down failed")
		}
	}
	p.Run(2e6)
	if k.Stats().Ops != uint64(len(ops)) {
		t.Fatalf("served %d of %d", k.Stats().Ops, len(ops))
	}
	if port.Up.Len() != len(ops) {
		t.Fatalf("%d responses for %d requests", port.Up.Len(), len(ops))
	}
	if k.Hist().Count() != uint64(len(ops)) {
		t.Fatalf("latency histogram has %d samples", k.Hist().Count())
	}
	// Read responses carry the value; write acks are small.
	var sawBig, sawSmall bool
	for {
		_, e, ok := port.Up.Pop()
		if !ok {
			break
		}
		if e.Pkt.Size >= 1024 {
			sawBig = true
		} else {
			sawSmall = true
		}
		port.Release(e.Buf)
	}
	if !sawBig || !sawSmall {
		t.Fatal("response size mix wrong")
	}
}

func TestRocksDBRunsYCSB(t *testing.T) {
	p := smallPlatform()
	w, _ := ycsb.WorkloadByName("A")
	r := workload.NewRocksDB(workload.RocksDBConfig{Records: 2048, ValueSize: 1024}, w, 2000, p.Alloc, 1)
	addTenant(t, p, "rocks", 0, 1, r)
	p.Run(200e6)
	if !r.Done() {
		t.Fatalf("rocksdb not done: %d ops", r.Stats().Ops)
	}
	hists := r.Hists()
	if hists[ycsb.Read] == nil || hists[ycsb.Read].Count() == 0 {
		t.Fatal("no read latencies recorded")
	}
	if hists[ycsb.Update] == nil || hists[ycsb.Update].Count() == 0 {
		t.Fatal("no update latencies recorded")
	}
	if r.Hist(ycsb.Read).Mean() <= 0 {
		t.Fatal("zero mean latency")
	}
}

func TestNFChainProcessesAndForwards(t *testing.T) {
	p := smallPlatform()
	dev := p.AddDevice(nic.Config{Name: "n0", VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	nf := workload.NewNFChain(vf, 1024, p.Alloc)
	addTenant(t, p, "nf", 0, 1, nf)
	fs := pkt.NewFlowSet(1024, 1, 1)
	for i := 0; i < 50; i++ {
		dev.DeliverRx(0, pkt.Packet{Flow: fs.At(i), Size: 1500}, p.NowNS())
	}
	p.Run(5e6)
	if nf.Stats().Ops != 50 {
		t.Fatalf("processed %d of 50", nf.Stats().Ops)
	}
	if vf.Stats.TxPackets == 0 {
		t.Fatal("nothing transmitted")
	}
	if nf.Hist().Count() == 0 {
		t.Fatal("no latency samples")
	}
	if nf.Jitter() < 0 {
		t.Fatal("negative jitter")
	}
}

func TestL3FwdTableSized(t *testing.T) {
	p := smallPlatform()
	dev := p.AddDevice(nic.Config{Name: "n0", VFs: 1})
	vf := dev.VF(0)
	l := workload.NewL3Fwd(vf, 1<<20, p.Alloc)
	if l.TableBytes() != (1<<20)*64 {
		t.Fatalf("table bytes = %d", l.TableBytes())
	}
}

func TestSPDKServerKeepsQueueDepthAndConsumesBlocks(t *testing.T) {
	p := smallPlatform()
	cfg := nvme.DefaultConfig("ssd0")
	cfg.ReadLatencyNS = 20e3
	cfg.BandwidthGBps = 3.5 / 100
	dev := nvme.New(cfg, 1, p.DDIO, p.Alloc)
	dev.QP(0).ConsumerCore = 0
	p.AddMicrotickHook(dev.Tick)
	srv := workload.NewSPDKServer(dev, 0, 16, 4096, p.Alloc, 1)
	addTenant(t, p, "spdk", 0, 1, srv)
	p.Run(50e6)
	if srv.Stats().Ops == 0 {
		t.Fatal("no I/O completed")
	}
	if out := dev.QP(0).Outstanding(); out == 0 || out > 16 {
		t.Fatalf("outstanding = %d, want (0,16]", out)
	}
	if srv.Hist().Count() == 0 || srv.Hist().Mean() < cfg.ReadLatencyNS {
		t.Fatalf("latency hist: count=%d mean=%.0f", srv.Hist().Count(), srv.Hist().Mean())
	}
	if dev.Stats().QueueFull != 0 {
		t.Fatalf("server overfilled the queue %d times", dev.Stats().QueueFull)
	}
}

func TestSPDKServerWriteMix(t *testing.T) {
	p := smallPlatform()
	cfg := nvme.DefaultConfig("ssd0")
	cfg.ReadLatencyNS, cfg.WriteLatencyNS = 10e3, 5e3
	cfg.BandwidthGBps = 3.5 / 100
	dev := nvme.New(cfg, 1, p.DDIO, p.Alloc)
	dev.QP(0).ConsumerCore = 0
	p.AddMicrotickHook(dev.Tick)
	srv := workload.NewSPDKServer(dev, 0, 8, 4096, p.Alloc, 1)
	srv.WriteFrac = 0.5
	addTenant(t, p, "spdk", 0, 1, srv)
	p.Run(50e6)
	st := dev.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Fatalf("mix missing an op kind: %+v", st)
	}
}

func TestOVSVirtioToNICDirection(t *testing.T) {
	p := smallPlatform()
	o := workload.NewOVS(64, p.Alloc)
	dev := p.AddDevice(nic.Config{Name: "n0", VFs: 1})
	vf := dev.VF(0)
	vf.ConsumerCore = 0
	port := nic.NewVirtioPort("p0", 64, p.Alloc)
	o.NICPorts = []*nic.VF{vf}
	o.VirtioPorts = []*nic.VirtioPort{port}
	addTenant(t, p, "ovs", 0, 1, o.Worker([]int{0}, []int{0}))
	// Tenant-originated packets on the Up ring must reach the NIC Tx.
	for i := 0; i < 5; i++ {
		buf, ok := port.GetBuf()
		if !ok {
			t.Fatal("port pool exhausted")
		}
		if _, ok := port.PushUp(nic.Entry{Pkt: pkt.Packet{Size: 256}, Buf: buf}); !ok {
			t.Fatal("push up failed")
		}
	}
	p.Run(2e6)
	if vf.Stats.TxPackets != 5 {
		t.Fatalf("transmitted %d of 5", vf.Stats.TxPackets)
	}
	if port.Pool.Avail() != port.Pool.Size() {
		t.Fatalf("port pool leaked: %d/%d", port.Pool.Avail(), port.Pool.Size())
	}
}

func TestOVSMegaflowCostGrowsWithFlows(t *testing.T) {
	// The switch's per-packet cost must rise with the live flow count
	// (EMC thrash + wider tuple-space search) — the Fig. 9 mechanism.
	cpp := func(flows int) float64 {
		p := smallPlatform()
		o := workload.NewOVS(1<<20, p.Alloc)
		o.SetFlows(flows)
		dev := p.AddDevice(nic.Config{Name: "n0", VFs: 1})
		vf := dev.VF(0)
		vf.ConsumerCore = 0
		port := nic.NewVirtioPort("p0", 512, p.Alloc)
		o.NICPorts = []*nic.VF{vf}
		o.VirtioPorts = []*nic.VirtioPort{port}
		addTenant(t, p, "ovs", 0, 1, o.Worker([]int{0}, []int{0}))
		fs := pkt.NewFlowSet(flows, 0, 1)
		g := tgen.NewGenerator(p.GeneratorRate(2e6), 64, fs, 2)
		p.AttachGenerator(g, dev, 0)
		// Bounce consumer keeps the port drained.
		addTenant(t, p, "sink", 1, 2, workload.NewVirtioBounce(port))
		p.Run(40e6)
		st := o.Stats()
		if st.Packets == 0 {
			t.Fatal("no packets switched")
		}
		return float64(p.CoreCycles(0)) / float64(st.Packets)
	}
	few, many := cpp(16), cpp(1<<19)
	if many <= few {
		t.Fatalf("megaflow cost at 512k flows (%.0f cpp) not above 16 flows (%.0f cpp)", many, few)
	}
}
