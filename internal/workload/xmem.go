package workload

import (
	"math/rand"

	"iatsim/internal/addr"
	"iatsim/internal/sim"
)

// XMem models the X-Mem cloud memory microbenchmark in its random-read
// configuration (the paper uses it in Sec. III-B and Fig. 10): a tight loop
// of loads at uniformly random line addresses inside a working set,
// reporting throughput (accesses per second) and average access latency.
type XMem struct {
	region  addr.Region
	wsLines int
	rng     *rand.Rand

	// ComputePerOp is the non-memory instruction cost between loads
	// (pointer arithmetic, loop overhead).
	ComputePerOp int64

	stats OpStats
}

// NewXMem builds an X-Mem instance whose working set can grow up to
// maxBytes; the initial working set is wsBytes.
func NewXMem(al *addr.Allocator, maxBytes, wsBytes uint64, seed int64) *XMem {
	x := &XMem{
		region:       al.Alloc(maxBytes, 0),
		rng:          newRNG(seed),
		ComputePerOp: 8,
	}
	x.SetWorkingSet(wsBytes)
	return x
}

// SetWorkingSet resizes the live working set (clamped to the allocated
// region); the paper's Fig. 10 grows container 4 from 2MB to 10MB at t=5s.
func (x *XMem) SetWorkingSet(bytes uint64) {
	if bytes > x.region.Size {
		bytes = x.region.Size
	}
	x.wsLines = int(bytes / addr.LineSize)
	if x.wsLines < 1 {
		x.wsLines = 1
	}
}

// WorkingSetBytes returns the live working set size.
func (x *XMem) WorkingSetBytes() uint64 { return uint64(x.wsLines) * addr.LineSize }

// Run implements sim.Worker: random reads until the budget is gone.
func (x *XMem) Run(ctx *sim.Ctx) {
	for ctx.Remaining() > 0 {
		a := x.region.Line(x.rng.Intn(x.wsLines))
		lat := ctx.Access(a, false)
		ctx.Compute(x.ComputePerOp)
		x.stats.Ops++
		x.stats.LatCycles += uint64(lat)
	}
}

// Stats returns cumulative operation statistics.
func (x *XMem) Stats() OpStats { return x.stats }
