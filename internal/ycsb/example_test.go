package ycsb_test

import (
	"fmt"

	"iatsim/internal/ycsb"
)

// ExampleGenerator drives workload A (50% reads, 50% updates) over 1000
// records and reports the observed mix.
func ExampleGenerator() {
	w, _ := ycsb.WorkloadByName("A")
	g := ycsb.NewGenerator(w, 1000, 42)
	counts := map[ycsb.Op]int{}
	for i := 0; i < 10000; i++ {
		counts[g.Next().Op]++
	}
	reads := float64(counts[ycsb.Read]) / 10000
	fmt.Println(reads > 0.47 && reads < 0.53)
	fmt.Println(counts[ycsb.Read]+counts[ycsb.Update] == 10000)
	// Output:
	// true
	// true
}

// ExampleHistogram records latencies and extracts percentiles.
func ExampleHistogram() {
	var h ycsb.Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i))
	}
	fmt.Println(h.Count(), h.Mean())
	fmt.Println(h.Percentile(50) <= h.Percentile(99))
	// Output:
	// 1000 500.5
	// true
}
