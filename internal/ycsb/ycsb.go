// Package ycsb implements the Yahoo! Cloud Serving Benchmark machinery the
// paper drives Redis and RocksDB with (Sec. VI-C): the standard core
// workloads A–F, the scrambled Zipfian and latest request distributions,
// and latency histograms with percentile extraction.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Op is a key-value operation type.
type Op int

// Operation kinds of the YCSB core workloads.
const (
	Read Op = iota
	Update
	Insert
	Scan
	ReadModifyWrite
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "READ"
	case Update:
		return "UPDATE"
	case Insert:
		return "INSERT"
	case Scan:
		return "SCAN"
	case ReadModifyWrite:
		return "RMW"
	}
	return "?"
}

// Request is one generated operation.
type Request struct {
	Op  Op
	Key uint64
	// ScanLen is the number of records a Scan touches.
	ScanLen int
}

// Workload is a YCSB core-workload definition: an operation mix plus a
// request distribution.
type Workload struct {
	Name       string
	ReadProp   float64
	UpdateProp float64
	InsertProp float64
	ScanProp   float64
	RMWProp    float64
	// Latest selects the "latest" distribution (workload D) instead of
	// scrambled Zipfian.
	Latest  bool
	ScanLen int
}

// CoreWorkloads returns the six standard workloads. E uses short scans
// (mean 16) to bound simulation cost; the paper's YCSB runs use the
// defaults.
func CoreWorkloads() []Workload {
	return []Workload{
		{Name: "A", ReadProp: 0.5, UpdateProp: 0.5},
		{Name: "B", ReadProp: 0.95, UpdateProp: 0.05},
		{Name: "C", ReadProp: 1.0},
		{Name: "D", ReadProp: 0.95, InsertProp: 0.05, Latest: true},
		{Name: "E", ScanProp: 0.95, InsertProp: 0.05, ScanLen: 16},
		{Name: "F", ReadProp: 0.5, RMWProp: 0.5},
	}
}

// WorkloadByName finds one of the core workloads.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range CoreWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("ycsb: unknown workload %q", name)
}

// Generator produces Requests for a Workload over a keyspace of n records.
type Generator struct {
	w      Workload
	zipf   *Zipfian
	n      uint64
	latest uint64 // highest key inserted so far (for D)
	rng    *rand.Rand
}

// NewGenerator builds a generator over n records with the paper's 0.99
// Zipfian constant.
func NewGenerator(w Workload, n uint64, seed int64) *Generator {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipfian(n, 0.99, seed+1)
	if w.Latest {
		// The "latest" distribution samples an offset from the most
		// recent insert: rank 0 must stay the hottest, so the key
		// scrambling is disabled.
		z.scramble = false
	}
	return &Generator{
		w:      w,
		zipf:   z,
		n:      n,
		latest: n - 1,
		rng:    rng,
	}
}

// Next produces the next request.
func (g *Generator) Next() Request {
	r := g.rng.Float64()
	w := g.w
	switch {
	case r < w.ReadProp:
		return Request{Op: Read, Key: g.nextKey()}
	case r < w.ReadProp+w.UpdateProp:
		return Request{Op: Update, Key: g.nextKey()}
	case r < w.ReadProp+w.UpdateProp+w.InsertProp:
		g.latest++
		return Request{Op: Insert, Key: g.latest % g.n}
	case r < w.ReadProp+w.UpdateProp+w.InsertProp+w.ScanProp:
		ln := 1 + g.rng.Intn(2*w.ScanLen)
		return Request{Op: Scan, Key: g.nextKey(), ScanLen: ln}
	default:
		return Request{Op: ReadModifyWrite, Key: g.nextKey()}
	}
}

func (g *Generator) nextKey() uint64 {
	if g.w.Latest {
		// "latest": Zipfian over recency — key = latest - zipf sample.
		off := g.zipf.Next(g.rng)
		if off > g.latest {
			off = g.latest
		}
		return (g.latest - off) % g.n
	}
	return g.zipf.Next(g.rng)
}

// Zipfian is the Gray et al. Zipfian generator used by YCSB, with key
// scrambling so the hot keys are spread over the keyspace.
type Zipfian struct {
	n          uint64
	theta      float64
	alpha      float64
	zetan      float64
	eta        float64
	zeta2theta float64
	scramble   bool
}

// NewZipfian builds a generator over [0, n) with parameter theta.
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, scramble: true}
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.zetan = zeta(n, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	_ = seed
	return z
}

func zeta(n uint64, theta float64) float64 {
	// For large n, approximate the tail with the integral; exact sum for
	// the first 10k terms keeps the head accurate where it matters.
	const exact = 10000
	var s float64
	m := n
	if m > exact {
		m = exact
	}
	for i := uint64(1); i <= m; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	if n > exact {
		// integral of x^-theta from exact to n
		s += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	}
	return s
}

// Next samples a key.
func (z *Zipfian) Next(rng *rand.Rand) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	var k uint64
	switch {
	case uz < 1:
		k = 0
	case uz < 1+math.Pow(0.5, z.theta):
		k = 1
	default:
		k = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if k >= z.n {
		k = z.n - 1
	}
	if z.scramble {
		return scrambleKey(k) % z.n
	}
	return k
}

func scrambleKey(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xFF51AFD7ED558CCD
	k ^= k >> 33
	k *= 0xC4CEB9FE1A85EC53
	k ^= k >> 33
	return k
}

// Histogram is a log-bucketed latency histogram (nanosecond samples).
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     float64
	max     float64
}

// bucketOf maps a sample to its power-of-two bucket.
func bucketOf(ns float64) int {
	if ns < 1 {
		return 0
	}
	b := int(math.Log2(ns))
	if b > 63 {
		b = 63
	}
	return b
}

// Record adds a sample in nanoseconds.
func (h *Histogram) Record(ns float64) {
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average sample, or 0.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Percentile returns an upper-bound estimate of the p-th percentile
// (p in (0,100]), using the bucket upper edge.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return math.Pow(2, float64(i+1))
		}
	}
	return h.max
}

// Merge adds o's samples into h (bucket-wise; max/mean preserved
// appropriately).
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }
