package ycsb

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoreWorkloadMixesSumToOne(t *testing.T) {
	for _, w := range CoreWorkloads() {
		sum := w.ReadProp + w.UpdateProp + w.InsertProp + w.ScanProp + w.RMWProp
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workload %s proportions sum to %v", w.Name, sum)
		}
	}
}

func TestWorkloadByName(t *testing.T) {
	w, err := WorkloadByName("B")
	if err != nil || w.ReadProp != 0.95 {
		t.Fatalf("B = %+v, err=%v", w, err)
	}
	if _, err := WorkloadByName("Z"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGeneratorMixProportions(t *testing.T) {
	w, _ := WorkloadByName("A")
	g := NewGenerator(w, 10000, 1)
	counts := map[Op]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Op]++
	}
	frac := float64(counts[Read]) / n
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("workload A read fraction = %.3f", frac)
	}
	if counts[Update]+counts[Read] != n {
		t.Fatalf("unexpected ops in A: %v", counts)
	}
}

func TestGeneratorKeysInRange(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D", "E", "F"} {
		w, _ := WorkloadByName(name)
		g := NewGenerator(w, 1000, 2)
		for i := 0; i < 2000; i++ {
			r := g.Next()
			if r.Key >= 1000 {
				t.Fatalf("workload %s key %d out of range", name, r.Key)
			}
			if r.Op == Scan && r.ScanLen < 1 {
				t.Fatalf("scan with length %d", r.ScanLen)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(1<<20, 0.99, 1)
	rng := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	// The hottest scrambled key should take a few percent of traffic —
	// vastly above uniform (1/2^20).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.01 {
		t.Fatalf("hottest key only %.4f of traffic; not Zipfian", float64(max)/n)
	}
	// And the set of touched keys must be far smaller than n (reuse).
	if len(counts) > n/2 {
		t.Fatalf("%d distinct keys in %d samples; no skew", len(counts), n)
	}
}

// Property: Zipfian samples always fall in [0, n).
func TestZipfianRangeProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw%1000) + 2
		z := NewZipfian(n, 0.99, seed)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if z.Next(rng) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLatestDistributionFavoursRecent(t *testing.T) {
	w, _ := WorkloadByName("D")
	g := NewGenerator(w, 10000, 4)
	recent := 0
	const n = 5000
	for i := 0; i < n; i++ {
		r := g.Next()
		if r.Op != Read {
			continue
		}
		// "latest" keys cluster near the most recently inserted key.
		d := int64(g.latest%10000) - int64(r.Key)
		if d < 0 {
			d += 10000
		}
		if d < 100 {
			recent++
		}
	}
	if recent < n/10 {
		t.Fatalf("only %d/%d reads near the latest insert", recent, n)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram should be zero-valued")
	}
	for _, v := range []float64{100, 200, 300, 400} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 400 {
		t.Fatalf("max = %v", h.Max())
	}
}

func TestHistogramPercentileOrdering(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		h.Record(rng.Float64() * 1e6)
	}
	p50, p90, p99 := h.Percentile(50), h.Percentile(90), h.Percentile(99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("percentiles not monotone: %v %v %v", p50, p90, p99)
	}
	// Bucketed upper bounds: p99 of U(0,1e6) must be within a 2x bucket.
	if p99 < 0.9e6 || p99 > 2.1e6 {
		t.Fatalf("p99 = %v", p99)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(100)
	b.Record(300)
	b.Record(500)
	a.Merge(&b)
	if a.Count() != 3 || a.Max() != 500 || a.Mean() != 300 {
		t.Fatalf("merged: count=%d max=%v mean=%v", a.Count(), a.Max(), a.Mean())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear the histogram")
	}
}

// Property: merging two histograms preserves total count and max.
func TestHistogramMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		var a, b Histogram
		maxV := 0.0
		for _, x := range xs {
			v := math.Abs(x)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			a.Record(v)
			maxV = math.Max(maxV, v)
		}
		for _, y := range ys {
			v := math.Abs(y)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			b.Record(v)
			maxV = math.Max(maxV, v)
		}
		n := a.Count() + b.Count()
		a.Merge(&b)
		return a.Count() == n && a.Max() == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		Read: "READ", Update: "UPDATE", Insert: "INSERT", Scan: "SCAN", ReadModifyWrite: "RMW",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}
